// Figure 9 — efficiency of the time-sharing mode's zero-copy design: the
// same in-situ pipeline run (a) through Smart's read pointer and (b)
// through an implementation that copies each time-step before analyzing it.
//
// Paper: (a) Heat3D + logistic regression on 4 nodes, time-step 0.6-1.8 GB
// — zero copy wins by up to 11%, and 2 GB crashes; (b) Lulesh + mutual
// information on 64 nodes, edge 100-233 — ~7% until the copy pushes the
// footprint to the memory bound, then 5x (and the next size crashes).
//
// The container reproduces the copy-cost component with real runs and the
// memory cliff as a budget: footprints are tracked logically and
// configurations whose copy crosses the budget are flagged OVER-BUDGET —
// the same boundary the paper reports as a crash (DESIGN.md §1).
#include "analytics/logistic_regression.h"
#include "analytics/mutual_information.h"
#include "bench/bench_util.h"
#include "sim/heat3d.h"
#include "sim/minilulesh.h"
#include "simmpi/world.h"

namespace {

using namespace smart;
using namespace smart::analytics;

struct Leg {
  double zero_copy_makespan = 0.0;
  double copy_makespan = 0.0;
  std::size_t zero_copy_peak = 0;
  std::size_t copy_peak = 0;
  bool zero_copy_over = false;
  bool copy_over = false;
};

constexpr int kRanks = 4;
constexpr int kSteps = 3;

Leg heat3d_logreg(std::size_t nz_local, bool copy_input, std::size_t budget) {
  smart::bench::reset_memory(budget);
  RunOptions opts;
  opts.copy_input = copy_input;
  auto stats = simmpi::launch(kRanks, [&](simmpi::Communicator& comm) {
    ThreadPool sim_pool(2);
    sim::Heat3D heat({.nx = 32, .ny = 32, .nz_local = nz_local}, &comm, &sim_pool);
    LogisticRegression<double> reg(SchedArgs(2, 16, nullptr, 3), 15, 0.1, opts);
    for (int s = 0; s < kSteps; ++s) {
      heat.step();
      reg.run(heat.output(), heat.output_len(), nullptr, 0);
    }
  });
  Leg leg;
  leg.zero_copy_makespan = stats.makespan();
  leg.zero_copy_peak = MemoryTracker::instance().peak();
  leg.zero_copy_over = MemoryTracker::instance().peak_over_budget();
  return leg;
}

Leg lulesh_mi(std::size_t edge, bool copy_input, std::size_t budget) {
  smart::bench::reset_memory(budget);
  RunOptions opts;
  opts.copy_input = copy_input;
  auto stats = simmpi::launch(kRanks, [&](simmpi::Communicator& comm) {
    ThreadPool sim_pool(2);
    sim::MiniLulesh lulesh({.edge = edge}, &comm, &sim_pool);
    MutualInformation<double> mi(SchedArgs(2, 2, nullptr, 1), 0.0, 16.0, 100, 100, opts);
    for (int s = 0; s < kSteps; ++s) {
      lulesh.step();
      mi.run(lulesh.output(), lulesh.output_len(), nullptr, 0);
    }
  });
  Leg leg;
  leg.zero_copy_makespan = stats.makespan();
  leg.zero_copy_peak = MemoryTracker::instance().peak();
  leg.zero_copy_over = MemoryTracker::instance().peak_over_budget();
  return leg;
}

}  // namespace

int main() {
  using smart::Table;
  smart::bench::print_header(
      "Figure 9: time-sharing zero copy vs an extra input copy",
      "(a) Heat3D+logreg, step 0.6-1.8 GB, 4 nodes, up to 11% win, 2 GB crashes; "
      "(b) Lulesh+mutual information, edge 100-233, 64 nodes, 7% -> 5x at the memory bound",
      "4 ranks x 2 threads, 3 steps per point, logical footprint vs budget");

  const std::vector<std::size_t> nz_sweep = {32, 64, 128, 192};
  const std::vector<std::size_t> edge_sweep = {20, 28, 40, 52};

  // (a) Heat3D + logistic regression: step size swept via nz_local.
  {
    Table table({"step_size_per_rank", "zero_copy_s", "with_copy_s", "copy_overhead_pct",
                 "zero_copy_peak", "with_copy_peak", "with_copy_flag"});
    // Calibrate the memory bound the way the paper sizes its runs against
    // the 12 GB node: the budget sits between the largest configuration's
    // zero-copy and with-copy footprints, so only the extra copy crosses it.
    const std::size_t largest = smart::bench::scaled(nz_sweep.back());
    const std::size_t zc_top = heat3d_logreg(largest, false, 0).zero_copy_peak;
    const std::size_t cp_top = heat3d_logreg(largest, true, 0).zero_copy_peak;
    const std::size_t budget = (zc_top + cp_top) / 2;
    for (const std::size_t nz : nz_sweep) {
      const std::size_t scaled_nz = smart::bench::scaled(nz);
      const std::size_t step_bytes = 32 * 32 * scaled_nz * sizeof(double);
      Leg zc = heat3d_logreg(scaled_nz, false, budget);
      Leg cp = heat3d_logreg(scaled_nz, true, budget);
      table.begin_row();
      table.add(smart::format_bytes(step_bytes));
      table.add(zc.zero_copy_makespan, 4);
      table.add(cp.zero_copy_makespan, 4);
      table.add(100.0 * (cp.zero_copy_makespan / zc.zero_copy_makespan - 1.0), 1);
      table.add(smart::format_bytes(zc.zero_copy_peak));
      table.add(smart::format_bytes(cp.zero_copy_peak));
      table.add(cp.zero_copy_over ? "OVER-BUDGET (paper: crash/5x)" : "ok");
    }
    smart::bench::finish(table, "fig09a", "Figure 9(a): Heat3D + logistic regression");
  }

  // (b) MiniLulesh + mutual information: memory grows cubically in edge.
  {
    Table table({"edge", "step_size_per_rank", "zero_copy_s", "with_copy_s",
                 "copy_overhead_pct", "with_copy_peak", "with_copy_flag"});
    const auto largest_edge = static_cast<std::size_t>(
        static_cast<double>(edge_sweep.back()) * std::cbrt(smart::bench_scale()));
    const std::size_t zc_top = lulesh_mi(largest_edge, false, 0).zero_copy_peak;
    const std::size_t cp_top = lulesh_mi(largest_edge, true, 0).zero_copy_peak;
    const std::size_t budget = (zc_top + cp_top) / 2;
    for (const std::size_t edge : edge_sweep) {
      const auto scaled_edge =
          static_cast<std::size_t>(static_cast<double>(edge) *
                                   std::cbrt(smart::bench_scale()));
      const std::size_t step_bytes = scaled_edge * scaled_edge * scaled_edge * sizeof(double);
      Leg zc = lulesh_mi(scaled_edge, false, budget);
      Leg cp = lulesh_mi(scaled_edge, true, budget);
      table.begin_row();
      table.add(scaled_edge);
      table.add(smart::format_bytes(step_bytes));
      table.add(zc.zero_copy_makespan, 4);
      table.add(cp.zero_copy_makespan, 4);
      table.add(100.0 * (cp.zero_copy_makespan / zc.zero_copy_makespan - 1.0), 1);
      table.add(smart::format_bytes(cp.zero_copy_peak));
      table.add(cp.zero_copy_over ? "OVER-BUDGET (paper: crash/5x)" : "ok");
    }
    smart::bench::finish(table, "fig09b", "Figure 9(b): Lulesh + mutual information");
  }

  std::cout << "Expectation (paper shape): with_copy >= zero_copy at every size, the gap\n"
               "growing with step size; the largest with-copy configurations cross the\n"
               "budget (the paper's crash / 5x degradation points), zero-copy never does.\n";
  return 0;
}
