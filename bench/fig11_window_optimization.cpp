// Figure 11 — effect of the early-emission optimization (Section 4 /
// Algorithm 2) for window-based analytics: the same pipeline with the
// trigger enabled vs disabled.
//
// Paper: (a) Heat3D + moving average (window 7), step 0.5-1 GB on 4 nodes
// — speedup up to 5.6x, and the 1 GB no-trigger run crashes; (b) Lulesh +
// moving median (window 11), edge 60-200 on 64 nodes — speedup up to 5.2x,
// edge 200 no-trigger crashes.  The optimization cuts the live reduction
// objects from the input size to the window size (x1,000,000 in the paper).
#include "analytics/moving_average.h"
#include "analytics/moving_median.h"
#include "bench/bench_util.h"
#include "sim/heat3d.h"
#include "sim/minilulesh.h"
#include "simmpi/world.h"

namespace {

using namespace smart;
using namespace smart::analytics;

constexpr int kRanks = 4;
constexpr int kSteps = 2;

struct Leg {
  double makespan = 0.0;
  std::size_t peak_objects = 0;
  std::size_t peak_bytes = 0;
  bool over_budget = false;
  RunStats rank0;  ///< rank 0's full scheduler stat set (RUNSTATS line)
};

Leg heat3d_moving_average(std::size_t nz_local, bool trigger, std::size_t budget) {
  smart::bench::reset_memory(budget);
  RunOptions opts;
  opts.enable_trigger = trigger;
  RunStats rank0;
  auto stats = simmpi::launch(kRanks, [&](simmpi::Communicator& comm) {
    ThreadPool sim_pool(2);
    sim::Heat3D heat({.nx = 32, .ny = 32, .nz_local = nz_local}, &comm, &sim_pool);
    MovingAverage<double> ma(SchedArgs(2, 1), 7, opts);
    std::vector<double> out(heat.output_len(), 0.0);
    for (int s = 0; s < kSteps; ++s) {
      heat.step();
      ma.run2(heat.output(), heat.output_len(), out.data(), out.size());
    }
    if (comm.rank() == 0) rank0 = ma.stats();
  });
  Leg leg;
  leg.makespan = stats.makespan();
  leg.peak_objects = rank0.peak_reduction_objects;
  leg.peak_bytes = rank0.peak_reduction_bytes;
  leg.over_budget = MemoryTracker::instance().peak_over_budget();
  leg.rank0 = rank0;
  return leg;
}

Leg lulesh_moving_median(std::size_t edge, bool trigger, std::size_t budget) {
  smart::bench::reset_memory(budget);
  RunOptions opts;
  opts.enable_trigger = trigger;
  RunStats rank0;
  auto stats = simmpi::launch(kRanks, [&](simmpi::Communicator& comm) {
    ThreadPool sim_pool(2);
    sim::MiniLulesh lulesh({.edge = edge}, &comm, &sim_pool);
    MovingMedian<double> mm(SchedArgs(2, 1), 11, opts);
    std::vector<double> out(lulesh.output_len(), 0.0);
    for (int s = 0; s < kSteps; ++s) {
      lulesh.step();
      mm.run2(lulesh.output(), lulesh.output_len(), out.data(), out.size());
    }
    if (comm.rank() == 0) rank0 = mm.stats();
  });
  Leg leg;
  leg.makespan = stats.makespan();
  leg.peak_objects = rank0.peak_reduction_objects;
  leg.peak_bytes = rank0.peak_reduction_bytes;
  leg.over_budget = MemoryTracker::instance().peak_over_budget();
  leg.rank0 = rank0;
  return leg;
}

}  // namespace

int main() {
  using smart::Table;
  smart::bench::print_header(
      "Figure 11: early emission of reduction objects on vs off",
      "(a) Heat3D + moving average (win 7), 0.5-1 GB steps, speedup <= 5.6x, 1 GB no-trigger "
      "crashes; (b) Lulesh + moving median (win 11), edge 60-200, speedup <= 5.2x",
      std::to_string(kRanks) + " ranks x 2 threads, " + std::to_string(kSteps) + " steps");

  {
    Table table({"step_size_per_rank", "with_trigger_s", "no_trigger_s", "speedup_x",
                 "peak_objs_on", "peak_objs_off", "obj_reduction_x", "no_trigger_flag"});
    // Budget calibrated between the largest size's with-trigger and
    // no-trigger footprints, so only the Θ(N)-object variant crosses it —
    // the paper's crash boundary.
    const std::vector<std::size_t> nz_sweep = {16, 32, 64};
    const std::size_t largest = smart::bench::scaled(nz_sweep.back());
    const std::size_t on_top = heat3d_moving_average(largest, true, 0).peak_bytes;
    const std::size_t off_top = heat3d_moving_average(largest, false, 0).peak_bytes;
    const std::size_t sim_bytes = 2 * 32 * 32 * (largest + 2) * sizeof(double) * kRanks;
    // Only the largest no-trigger configuration should cross the bound
    // (the paper's single crashed point), so sit just under its peak.
    const std::size_t budget =
        sim_bytes + kRanks * (on_top + (off_top - on_top) * 4 / 5);
    for (const std::size_t nz : nz_sweep) {
      const std::size_t scaled_nz = smart::bench::scaled(nz);
      const Leg on = heat3d_moving_average(scaled_nz, true, budget);
      const Leg off = heat3d_moving_average(scaled_nz, false, budget);
      smart::bench::print_run_stats("fig11a/nz=" + std::to_string(scaled_nz) + "/trigger=on",
                                    on.rank0);
      smart::bench::print_run_stats("fig11a/nz=" + std::to_string(scaled_nz) + "/trigger=off",
                                    off.rank0);
      table.begin_row();
      table.add(smart::format_bytes(32 * 32 * scaled_nz * sizeof(double)));
      table.add(on.makespan, 4);
      table.add(off.makespan, 4);
      table.add(off.makespan / on.makespan, 2);
      table.add(on.peak_objects);
      table.add(off.peak_objects);
      table.add(static_cast<double>(off.peak_objects) /
                    static_cast<double>(std::max<std::size_t>(on.peak_objects, 1)),
                1);
      table.add(off.over_budget ? "OVER-BUDGET (paper: crash)" : "ok");
    }
    smart::bench::finish(table, "fig11a", "Figure 11(a): Heat3D + moving average (window 7)");
  }

  {
    Table table({"edge", "with_trigger_s", "no_trigger_s", "speedup_x", "peak_objs_on",
                 "peak_objs_off", "obj_reduction_x", "no_trigger_flag"});
    const std::vector<std::size_t> edge_sweep = {16, 24, 36};
    const auto largest_edge = static_cast<std::size_t>(
        static_cast<double>(edge_sweep.back()) * std::cbrt(smart::bench_scale()));
    const std::size_t on_top = lulesh_moving_median(largest_edge, true, 0).peak_bytes;
    const std::size_t off_top = lulesh_moving_median(largest_edge, false, 0).peak_bytes;
    const std::size_t sim_bytes =
        5 * largest_edge * largest_edge * largest_edge * sizeof(double) * kRanks;
    const std::size_t budget =
        sim_bytes + kRanks * (on_top + (off_top - on_top) * 4 / 5);
    for (const std::size_t edge : edge_sweep) {
      const auto scaled_edge = static_cast<std::size_t>(
          static_cast<double>(edge) * std::cbrt(smart::bench_scale()));
      const Leg on = lulesh_moving_median(scaled_edge, true, budget);
      const Leg off = lulesh_moving_median(scaled_edge, false, budget);
      smart::bench::print_run_stats("fig11b/edge=" + std::to_string(scaled_edge) + "/trigger=on",
                                    on.rank0);
      smart::bench::print_run_stats(
          "fig11b/edge=" + std::to_string(scaled_edge) + "/trigger=off", off.rank0);
      table.begin_row();
      table.add(scaled_edge);
      table.add(on.makespan, 4);
      table.add(off.makespan, 4);
      table.add(off.makespan / on.makespan, 2);
      table.add(on.peak_objects);
      table.add(off.peak_objects);
      table.add(static_cast<double>(off.peak_objects) /
                    static_cast<double>(std::max<std::size_t>(on.peak_objects, 1)),
                1);
      table.add(off.over_budget ? "OVER-BUDGET (paper: crash)" : "ok");
    }
    smart::bench::finish(table, "fig11b", "Figure 11(b): Lulesh + moving median (window 11)");
  }

  std::cout << "Expectation (paper shape): speedup_x > 1 and growing with the data size;\n"
               "obj_reduction_x grows linearly with input size (the paper's x1,000,000);\n"
               "the largest no-trigger configurations go OVER-BUDGET (the paper's crash).\n";
  return 0;
}
