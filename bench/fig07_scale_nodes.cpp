// Figure 7 — in-situ processing times with varying node count on Heat3D
// (time sharing, 8 cores per node in the paper; 2 threads per rank here),
// for all nine analytics.
//
// Paper: 1 TB over 100 steps, 4..32 nodes, 93% average parallel efficiency,
// occasional super-linear points from per-node memory relief.
//
// The *global problem size is fixed* while ranks vary (strong scaling), so
// the per-rank slab shrinks as ranks grow.  Scaling is reported in virtual
// makespan (see bench_util.h).
#include <mutex>

#include "bench/bench_apps.h"
#include "bench/bench_util.h"
#include "sim/heat3d.h"
#include "simmpi/world.h"

namespace {

using namespace smart;

constexpr int kThreadsPerRank = 2;
constexpr int kSteps = 4;
const std::vector<int> kRankCounts = {2, 4, 8};

struct RunResult {
  double makespan = 0.0;
  double codec_seconds = 0.0;  ///< max per-rank time encoding/decoding maps
  std::size_t wire_bytes = 0;  ///< total combination payload across ranks
  RunStats rank0;              ///< rank 0's full stat set (RUNSTATS line)
};

RunResult run_once(const std::string& app_name, int nranks, std::size_t nz_global) {
  RunResult result;
  std::mutex mu;
  auto stats = simmpi::launch(nranks, [&](simmpi::Communicator& comm) {
    sim::Heat3D::Params p;
    p.nx = 32;
    p.ny = 32;
    p.nz_local = nz_global / static_cast<std::size_t>(nranks);
    ThreadPool sim_pool(kThreadsPerRank);
    sim::Heat3D heat(p, &comm, &sim_pool);
    auto app = smart::bench::make_app(app_name, kThreadsPerRank, 0.0, 1.0);
    for (int s = 0; s < kSteps; ++s) {
      heat.step();
      app->run(heat.output(), heat.output_len());
    }
    const RunStats& rs = app->stats();
    std::lock_guard<std::mutex> lock(mu);
    result.codec_seconds = std::max(result.codec_seconds, rs.codec_seconds);
    result.wire_bytes += rs.wire_bytes;
    if (comm.rank() == 0) result.rank0 = rs;
  });
  result.makespan = stats.makespan();
  return result;
}

}  // namespace

int main() {
  const std::size_t nz_global = smart::bench::scaled(96);
  smart::bench::print_header(
      "Figure 7: scaling the number of nodes on Heat3D (time sharing)",
      "1 TB, 100 steps, 4-32 nodes x 8 cores, 93% average parallel efficiency",
      "32x32x" + std::to_string(nz_global) + " global grid, " + std::to_string(kSteps) +
          " steps, ranks {2,4,8} x " + std::to_string(kThreadsPerRank) +
          " threads, virtual makespan");

  smart::Table table({"app", "ranks", "makespan_s", "speedup", "parallel_efficiency",
                      "codec_s", "wire_bytes"});
  double efficiency_sum = 0.0;
  int efficiency_count = 0;
  for (const auto& app : smart::bench::app_names()) {
    double base = 0.0;
    for (const int nranks : kRankCounts) {
      const RunResult r = run_once(app, nranks, nz_global);
      smart::bench::print_run_stats(app + "/ranks=" + std::to_string(nranks), r.rank0);
      if (nranks == kRankCounts.front()) base = r.makespan;
      const double speedup = base / r.makespan * kRankCounts.front();
      const double efficiency = speedup / nranks;
      if (nranks != kRankCounts.front()) {
        efficiency_sum += efficiency;
        ++efficiency_count;
      }
      table.begin_row();
      table.add(app);
      table.add(nranks);
      table.add(r.makespan, 4);
      table.add(speedup, 2);
      table.add(efficiency, 2);
      table.add(r.codec_seconds, 6);
      table.add(r.wire_bytes);
    }
  }
  smart::bench::finish(table, "fig07", "in-situ processing times vs node count (Heat3D)");
  std::cout << "Average parallel efficiency across apps and scaled rank counts: "
            << (efficiency_count > 0 ? efficiency_sum / efficiency_count : 0.0)
            << " (paper: 0.93)\n"
            << "Expectation (paper shape): near-linear drop of makespan with ranks for\n"
               "every app; window apps scale at least as well as the record apps.\n";
  return 0;
}
