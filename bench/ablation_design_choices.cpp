// Ablation harness for Smart's design choices beyond the paper's figures
// (DESIGN.md flags these as the decisions worth isolating):
//
//   A. circular-buffer depth in space-sharing mode — how many cells are
//      needed before the producer stops stalling;
//   B. processing placement — in-situ vs in-transit vs hybrid, measured by
//      network traffic and staging-side work for the same analytics;
//   C. combination topology — Smart's map-based global combination vs the
//      flat-array allreduce a hand-written code uses (the Figure 6 gap,
//      isolated from the reduction phase).
#include <thread>

#include "analytics/histogram.h"
#include "baselines/lowlevel.h"
#include "bench/bench_util.h"
#include "core/intransit.h"
#include "sim/minilulesh.h"
#include "simmpi/world.h"

namespace {

using namespace smart;
using analytics::Histogram;

// --- A: buffer depth ---------------------------------------------------------

void ablate_buffer_depth() {
  const std::size_t step_len = smart::bench::scaled(1u << 16);
  constexpr int kSteps = 12;

  Table table({"cells", "wall_s", "producer_stall_ratio"});
  for (const std::size_t cells : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                  std::size_t{8}}) {
    RunOptions opts;
    opts.buffer_cells = cells;
    Histogram<double> hist(SchedArgs(1, 1), 0.0, 1.0, 64, opts);
    hist.set_global_combination(false);
    std::vector<double> step(step_len, 0.5);

    WallTimer wall;
    double feed_seconds = 0.0;
    std::thread producer([&] {
      WallTimer feeding;
      for (int s = 0; s < kSteps; ++s) hist.feed(step.data(), step.size());
      hist.close_feed();
      feed_seconds = feeding.seconds();
    });
    while (hist.run(nullptr, 0)) {
    }
    producer.join();
    const double total = wall.seconds();
    table.begin_row();
    table.add(cells);
    table.add(total, 4);
    table.add(feed_seconds / total, 2);
    (void)total;
  }
  smart::bench::finish(table, "ablation_buffer", "A: space-sharing circular-buffer depth");
}

// --- B: placement --------------------------------------------------------------

void ablate_placement() {
  const intransit::Topology topo{.world_size = 4, .num_staging = 1};
  const std::size_t edge = 16;
  constexpr int kSteps = 3;

  auto in_transit = [&](bool hybrid) {
    return simmpi::launch(topo.world_size, [&](simmpi::Communicator& comm) {
      if (!topo.is_staging(comm.rank())) {
        // Staging ranks run no simulation, so the simulation ranks use
        // decoupled per-rank domains here (a halo exchange would address
        // a staging rank); a production setup would carve a simulation
        // sub-communicator instead.
        sim::MiniLulesh lulesh({.edge = edge}, nullptr);
        Histogram<double> local(SchedArgs(1, 1), 0.0, 16.0, 64);
        local.set_global_combination(false);
        for (int s = 0; s < kSteps; ++s) {
          lulesh.step();
          if (hybrid) {
            intransit::ship_local_result(comm, topo, local, lulesh.output(),
                                         lulesh.output_len());
          } else {
            intransit::ship_raw_step(comm, topo, lulesh.output(), lulesh.output_len());
          }
        }
        intransit::ship_end(comm, topo);
      } else {
        RunOptions acc;
        acc.accumulate_across_runs = true;
        Histogram<double> staged(SchedArgs(1, 1), 0.0, 16.0, 64, acc);
        staged.set_global_combination(false);
        (void)intransit::stage_all(comm, topo, staged);
      }
    });
  };
  auto in_situ = [&] {
    return simmpi::launch(topo.num_sim(), [&](simmpi::Communicator& comm) {
      sim::MiniLulesh lulesh({.edge = edge}, &comm);
      Histogram<double> hist(SchedArgs(1, 1), 0.0, 16.0, 64);
      for (int s = 0; s < kSteps; ++s) {
        lulesh.step();
        hist.run(lulesh.output(), lulesh.output_len(), nullptr, 0);
      }
    });
  };

  Table table({"placement", "network_bytes", "makespan_s"});
  const auto situ = in_situ();
  table.begin_row();
  table.add("in_situ");
  table.add(format_bytes(situ.total_bytes_sent()));
  table.add(situ.makespan(), 4);
  const auto transit = in_transit(false);
  table.begin_row();
  table.add("in_transit_raw");
  table.add(format_bytes(transit.total_bytes_sent()));
  table.add(transit.makespan(), 4);
  const auto hybrid = in_transit(true);
  table.begin_row();
  table.add("hybrid_snapshots");
  table.add(format_bytes(hybrid.total_bytes_sent()));
  table.add(hybrid.makespan(), 4);
  smart::bench::finish(table, "ablation_placement",
                       "B: in-situ vs in-transit vs hybrid placement");
}

// --- C: combination topology -----------------------------------------------------

void ablate_combination() {
  // The same global synchronization payload expressed as (1) Smart's
  // serialized map combination and (2) the baseline's flat allreduce.
  const int entries = 1200;
  constexpr int kRounds = 50;

  Table table({"mechanism", "makespan_s", "bytes_per_round"});
  const auto map_stats = simmpi::launch(4, [&](simmpi::Communicator& comm) {
    Histogram<double> hist(SchedArgs(1, 1), 0.0, 1.0, entries);
    // Populate every bucket, then repeatedly run a zero-length block: only
    // the combination machinery executes.
    std::vector<double> data(static_cast<std::size_t>(entries));
    for (int i = 0; i < entries; ++i) {
      data[static_cast<std::size_t>(i)] = (i + 0.5) / entries;
    }
    hist.run(data.data(), data.size(), nullptr, 0);
    for (int r = 0; r < kRounds - 1; ++r) hist.run(data.data(), data.size(), nullptr, 0);
    (void)comm;
  });
  const auto flat_stats = simmpi::launch(4, [&](simmpi::Communicator& comm) {
    std::vector<double> local(static_cast<std::size_t>(entries), 1.0);
    for (int r = 0; r < kRounds; ++r) {
      auto global = comm.allreduce_sum(local);
      (void)global;
    }
  });
  table.begin_row();
  table.add("smart_map_combination");
  table.add(map_stats.makespan(), 4);
  table.add(format_bytes(map_stats.total_bytes_sent() / kRounds));
  table.begin_row();
  table.add("flat_allreduce");
  table.add(flat_stats.makespan(), 4);
  table.add(format_bytes(flat_stats.total_bytes_sent() / kRounds));
  smart::bench::finish(table, "ablation_combination",
                       "C: map combination vs flat allreduce (the Figure 6 gap, isolated)");
}

}  // namespace

int main() {
  smart::bench::print_header("Ablation: design choices",
                             "not a paper figure; isolates DESIGN.md decision points",
                             "buffer depth, placement, combination topology");
  ablate_buffer_depth();
  ablate_placement();
  ablate_combination();
  std::cout << "Expectations: (A) stall ratio drops as cells grow, flattening after ~2-4;\n"
               "(B) hybrid ships orders of magnitude fewer bytes than raw in-transit while\n"
               "in-situ ships only combination traffic; (C) the map combination moves more\n"
               "bytes and time than the flat allreduce — the documented cost of Smart's\n"
               "flexible keyed objects (paper Section 5.3).\n";
  return 0;
}
