// The nine evaluation analytics (paper Section 5.1) behind one uniform
// interface, for the scalability harnesses (Figures 7, 8, 10).
// Parameters follow Section 5.4: grid size 1000, histogram 1200 buckets,
// mutual information 100x100 cells, logreg 3 iters x 15 dims, k-means
// k=8 x 10 iters x 4 dims, window size 25 for all window apps.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analytics/grid_aggregation.h"
#include "analytics/histogram.h"
#include "analytics/kde.h"
#include "analytics/kmeans.h"
#include "analytics/logistic_regression.h"
#include "analytics/moving_average.h"
#include "analytics/moving_median.h"
#include "analytics/mutual_information.h"
#include "analytics/savitzky_golay.h"
#include "common/rng.h"
#include "common/trace.h"
#include "core/run_stats.h"

namespace smart::bench {

/// One in-situ analytics engine bound to a thread count; run() analyzes a
/// time-step slab and returns per-call stats via stats().
class AnalyticsApp {
 public:
  virtual ~AnalyticsApp() = default;
  virtual void run(const double* data, std::size_t len) = 0;
  virtual const RunStats& stats() const = 0;
  /// Toggle cross-rank combination (window apps are off by construction).
  virtual void set_global_combination(bool flag) = 0;
  /// Installs a per-phase CSV recorder on the underlying scheduler (see
  /// RunOptions::phase_tracer); nullptr clears it.
  virtual void set_phase_tracer(PhaseTracer* tracer) = 0;
  /// Records the run's master seed on the underlying scheduler so its
  /// RunStats dumps (RUNSTATS lines) echo how to reproduce the run.
  virtual void set_master_seed(std::size_t seed) = 0;
};

namespace detail {

template <typename SchedulerT>
class SingleKeyApp : public AnalyticsApp {
 public:
  explicit SingleKeyApp(std::unique_ptr<SchedulerT> sched) : sched_(std::move(sched)) {}
  void run(const double* data, std::size_t len) override {
    sched_->run(data, len, nullptr, 0);
  }
  const RunStats& stats() const override { return sched_->stats(); }
  void set_global_combination(bool flag) override { sched_->set_global_combination(flag); }
  void set_phase_tracer(PhaseTracer* tracer) override { sched_->set_phase_tracer(tracer); }
  void set_master_seed(std::size_t seed) override { sched_->set_master_seed(seed); }

 protected:
  std::unique_ptr<SchedulerT> sched_;
};

template <typename SchedulerT>
class WindowApp : public AnalyticsApp {
 public:
  explicit WindowApp(std::unique_ptr<SchedulerT> sched) : sched_(std::move(sched)) {}
  void run(const double* data, std::size_t len) override {
    out_.resize(len);
    sched_->run2(data, len, out_.data(), out_.size());
  }
  const RunStats& stats() const override { return sched_->stats(); }
  void set_global_combination(bool flag) override { sched_->set_global_combination(flag); }
  void set_phase_tracer(PhaseTracer* tracer) override { sched_->set_phase_tracer(tracer); }
  void set_master_seed(std::size_t seed) override { sched_->set_master_seed(seed); }

 private:
  std::unique_ptr<SchedulerT> sched_;
  std::vector<double> out_;
};

/// K-means wants rows of kDims; logreg wants rows of dim+1 with a label in
/// the last slot.  The simulation slab is raw doubles, so these two apps
/// view it through the paper's "chunk as feature vector" convention; for
/// logistic regression we synthesize the label slot's meaning by thresholding
/// (value > threshold -> 1), keeping the data in place.
class KMeansApp : public AnalyticsApp {
 public:
  KMeansApp(int threads) {
    Rng rng(57);
    init_.resize(kK * kDims);
    for (auto& c : init_) c = rng.uniform(0.0, 1.0);
    seed_ = {init_.data(), kK, kDims};
    sched_ = std::make_unique<analytics::KMeans<double>>(
        SchedArgs(threads, kDims, &seed_, 10), kK, kDims);
  }
  void run(const double* data, std::size_t len) override {
    sched_->run(data, len, nullptr, 0);
  }
  const RunStats& stats() const override { return sched_->stats(); }
  void set_global_combination(bool flag) override { sched_->set_global_combination(flag); }
  void set_phase_tracer(PhaseTracer* tracer) override { sched_->set_phase_tracer(tracer); }
  void set_master_seed(std::size_t seed) override { sched_->set_master_seed(seed); }

 private:
  static constexpr std::size_t kK = 8;
  static constexpr std::size_t kDims = 4;
  std::vector<double> init_;
  analytics::KMeansInit seed_{};
  std::unique_ptr<analytics::KMeans<double>> sched_;
};

}  // namespace detail

inline const std::vector<std::string>& app_names() {
  static const std::vector<std::string> names = {
      "grid_aggregation", "histogram", "mutual_info", "logreg",       "kmeans",
      "moving_avg",       "moving_median", "kde",      "savitzky_golay"};
  return names;
}

/// Builds the named analytics app with Section 5.4 parameters.
/// data_min/data_max bound the slab's value range (for bucketed apps).
inline std::unique_ptr<AnalyticsApp> make_app(const std::string& name, int threads,
                                              double data_min, double data_max) {
  using namespace analytics;
  const SchedArgs one(threads, 1);
  if (name == "grid_aggregation") {
    return std::make_unique<detail::SingleKeyApp<GridAggregation<double>>>(
        std::make_unique<GridAggregation<double>>(one, 1000));
  }
  if (name == "histogram") {
    return std::make_unique<detail::SingleKeyApp<Histogram<double>>>(
        std::make_unique<Histogram<double>>(one, data_min, data_max, 1200));
  }
  if (name == "mutual_info") {
    return std::make_unique<detail::SingleKeyApp<MutualInformation<double>>>(
        std::make_unique<MutualInformation<double>>(SchedArgs(threads, 2), data_min, data_max,
                                                    100, 100));
  }
  if (name == "logreg") {
    return std::make_unique<detail::SingleKeyApp<LogisticRegression<double>>>(
        std::make_unique<LogisticRegression<double>>(SchedArgs(threads, 16, nullptr, 3), 15,
                                                     0.1));
  }
  if (name == "kmeans") return std::make_unique<detail::KMeansApp>(threads);
  if (name == "moving_avg") {
    return std::make_unique<detail::WindowApp<MovingAverage<double>>>(
        std::make_unique<MovingAverage<double>>(one, 25));
  }
  if (name == "moving_median") {
    return std::make_unique<detail::WindowApp<MovingMedian<double>>>(
        std::make_unique<MovingMedian<double>>(one, 25));
  }
  if (name == "kde") {
    return std::make_unique<detail::WindowApp<KernelDensity<double>>>(
        std::make_unique<KernelDensity<double>>(one, 25, 0.2 * (data_max - data_min) + 1e-6));
  }
  if (name == "savitzky_golay") {
    return std::make_unique<detail::WindowApp<SavitzkyGolay<double>>>(
        std::make_unique<SavitzkyGolay<double>>(one, 25, 4));
  }
  throw std::invalid_argument("make_app: unknown app " + name);
}

}  // namespace smart::bench
