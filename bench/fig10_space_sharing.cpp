// Figure 10 — time sharing vs space sharing on a many-core node (Xeon Phi
// in the paper; 60 usable cores), for histogram, k-means and moving median,
// with core-split schemes n_m in {50_10, 40_20, 30_30, 20_40, 10_50} plus
// time sharing and simulation-only baselines.
//
// Paper findings to reproduce: (1) k-means and moving median gain 10% and
// 48% from their best space-sharing scheme (50_10 and 30_30) because the
// simulation has hit its scaling bottleneck and spare cores are better
// spent on analytics; (2) histogram *loses* (-4.4% at its best scheme)
// because its cost is dominated by synchronization, which space sharing
// must serialize with the simulation's message passing (only one thread
// may call MPI at a time under concurrent tasks).
//
// Method on this container (DESIGN.md §1): per-step quantities are
// MEASURED from real runs —
//   S     = simulation CPU work per output step (sim-only makespan, 1 thread)
//   A     = analytics CPU work per output step  (local-only in-situ run minus S)
//   bytes = serialized global-combination traffic per step (runtime stats)
//   g     = global combination rounds per step  (runtime stats)
// — and composed with an explicit many-core occupancy model calibrated to
// the paper's observations about the Xeon Phi:
//   sim speedup  sp_s(t): Amdahl, 5% serial fraction (the paper's "cannot
//                use all cores effectively" scaling bottleneck)
//   ana speedup  sp_a(t): Amdahl, 2% serial fraction (analytics scale
//                further, per the paper's efficiency numbers)
//   sync         = g * alpha_mpi + bytes / beta_mpi per step (coprocessor
//                MPI constants: alpha 5 us, beta 200 MB/s), DOUBLED in
//                space-sharing mode (message passing serializes across the
//                concurrent simulation and analytics tasks)
//   time sharing T = S/sp_s(60) + A/sp_a(60) + sync
//   space n_m    T = max(S/sp_s(n), A/sp_a(m) + 2 sync)
//   sim-only     T = S/sp_s(60)
// The space-sharing *machinery* (circular buffer, concurrent feed/run) is
// also really exercised to validate the mode end to end.
#include <thread>

#include "analytics/histogram.h"
#include "bench/bench_apps.h"
#include "bench/bench_util.h"
#include "sim/minilulesh.h"
#include "simmpi/world.h"

namespace {

using namespace smart;

constexpr int kRanks = 2;
constexpr int kSteps = 2;
// Simulations advance many internal dt steps per analyzed output step;
// this keeps the simulation the dominant per-step cost, as in the paper's
// TB-scale Lulesh runs.
constexpr int kSubSteps = 10;
constexpr int kCores = 60;
constexpr double kAlphaMpi = 5e-6;   // per-message cost on the coprocessor
constexpr double kBetaMpi = 200e6;   // bytes/s across the coprocessor fabric

// Amdahl curves for the two lanes: the simulation saturates early (5%
// serial fraction -- the paper's "cannot use all Phi cores effectively"),
// the analytics much later (2%, matching its higher measured efficiency).
double sp_sim(int t) { return t / (1.0 + 0.05 * (t - 1.0)); }

double sp_ana(int t) { return t / (1.0 + 0.02 * (t - 1.0)); }

struct Measured {
  double sim_per_step = 0.0;   // S
  double ana_per_step = 0.0;   // A
  double sync_per_step = 0.0;  // modeled from measured traffic
};

std::size_t lulesh_edge() {
  return static_cast<std::size_t>(32.0 * std::cbrt(smart::bench_scale()));
}

double sim_only_makespan() {
  auto stats = simmpi::launch(kRanks, [&](simmpi::Communicator& comm) {
    sim::MiniLulesh lulesh({.edge = lulesh_edge()}, &comm);
    for (int s = 0; s < kSteps * kSubSteps; ++s) lulesh.step();
  });
  return stats.makespan();
}

Measured measure(const std::string& app_name) {
  Measured m;
  m.sim_per_step = sim_only_makespan() / kSteps;

  // Local-only in-situ run isolates the analytics compute...
  auto local_stats = simmpi::launch(kRanks, [&](simmpi::Communicator& comm) {
    sim::MiniLulesh lulesh({.edge = lulesh_edge()}, &comm);
    auto app = smart::bench::make_app(app_name, 1, 0.95, 1.35);
    app->set_global_combination(false);
    for (int s = 0; s < kSteps; ++s) {
      for (int sub = 0; sub < kSubSteps; ++sub) lulesh.step();
      app->run(lulesh.output(), lulesh.output_len());
    }
  });
  m.ana_per_step = std::max(0.0, local_stats.makespan() / kSteps - m.sim_per_step);

  // ... and a global run measures the per-step combination traffic, from
  // which the coprocessor sync cost is modeled.
  RunStats rank0;
  simmpi::launch(kRanks, [&](simmpi::Communicator& comm) {
    sim::MiniLulesh lulesh({.edge = lulesh_edge()}, &comm);
    auto app = smart::bench::make_app(app_name, 1, 0.95, 1.35);
    for (int s = 0; s < kSteps; ++s) {
      for (int sub = 0; sub < kSubSteps; ++sub) lulesh.step();
      app->run(lulesh.output(), lulesh.output_len());
    }
    if (comm.rank() == 0) rank0 = app->stats();
  });
  smart::bench::print_run_stats("fig10/" + app_name, rank0);
  m.sync_per_step = (static_cast<double>(rank0.global_combinations) * kAlphaMpi +
                     static_cast<double>(rank0.bytes_serialized) / kBetaMpi) /
                    kSteps;
  return m;
}

/// End-to-end mechanics check: really run the producer/consumer pipeline.
double real_space_sharing_wall() {
  WallTimer wall;
  simmpi::launch(kRanks, [&](simmpi::Communicator& comm) {
    sim::MiniLulesh lulesh({.edge = lulesh_edge()}, &comm);
    analytics::Histogram<double> hist(SchedArgs(1, 1), 0.0, 16.0, 1200);
    hist.set_global_combination(false);  // concurrent tasks: keep MPI out of the analytics task
    std::thread analytics_task([&] {
      while (hist.run(nullptr, 0)) {
      }
    });
    for (int s = 0; s < kSteps; ++s) {
      for (int sub = 0; sub < kSubSteps; ++sub) lulesh.step();
      hist.feed(lulesh.output(), lulesh.output_len());
    }
    hist.close_feed();
    analytics_task.join();
  });
  return wall.seconds();
}

}  // namespace

int main() {
  smart::bench::print_header(
      "Figure 10: time sharing vs space sharing (many-core model)",
      "1 TB Lulesh on 8 Xeon Phi nodes (60 usable cores); best space scheme: histogram "
      "-4.4%, k-means +10% (50_10), moving median +48% (30_30) vs time sharing",
      std::to_string(kRanks) + " ranks, edge " + std::to_string(lulesh_edge()) + ", " +
          std::to_string(kSubSteps) + " sim substeps per analyzed step; measured S/A/traffic "
          "composed with the 60-core occupancy model");

  const std::vector<std::pair<int, int>> schemes = {{50, 10}, {40, 20}, {30, 30}, {20, 40},
                                                    {10, 50}};
  for (const char* app : {"histogram", "kmeans", "moving_median"}) {
    const Measured m = measure(app);
    smart::Table table({"scheme", "modeled_time_per_step_s", "vs_time_sharing_pct"});
    const double t_time =
        m.sim_per_step / sp_sim(kCores) + m.ana_per_step / sp_ana(kCores) + m.sync_per_step;
    const double t_sim_only = m.sim_per_step / sp_sim(kCores);
    table.begin_row();
    table.add("sim_only");
    table.add(t_sim_only, 5);
    table.add("-");
    table.begin_row();
    table.add("time_sharing");
    table.add(t_time, 5);
    table.add(0.0, 1);
    for (const auto& [n, mm] : schemes) {
      const double t_space = std::max(m.sim_per_step / sp_sim(n),
                                      m.ana_per_step / sp_ana(mm) + 2.0 * m.sync_per_step);
      table.begin_row();
      table.add(std::to_string(n) + "_" + std::to_string(mm));
      table.add(t_space, 5);
      table.add(100.0 * (t_time - t_space) / t_time, 1);  // positive = space sharing wins
    }
    smart::bench::finish(table, std::string("fig10_") + app,
                         std::string("Figure 10: ") + app + "  [S=" +
                             smart::format_seconds(m.sim_per_step) + "/step, A=" +
                             smart::format_seconds(m.ana_per_step) + "/step, sync=" +
                             smart::format_seconds(m.sync_per_step) + "/step]");
  }

  const double mechanics = real_space_sharing_wall();
  std::cout << "space-sharing mechanics check (real feed/run pipeline, " << kSteps
            << " steps): " << smart::format_seconds(mechanics) << " wall\n";
  std::cout << "Expectation (paper shape): positive vs_time_sharing_pct for the\n"
               "compute-heavy apps (k-means, moving median) at some scheme, negative for\n"
               "histogram at every scheme (synchronization-dominated).\n";
  return 0;
}
