// Microbenchmarks (google-benchmark) for the core runtime operations the
// figures aggregate: in-place reduction, map serialization, the circular
// buffer, simmpi point-to-point and collectives, and end-to-end per-element
// costs of representative analytics.
#include <benchmark/benchmark.h>

#include <map>

#include "analytics/histogram.h"
#include "analytics/moving_average.h"
#include "analytics/red_objs.h"
#include "common/rng.h"
#include "core/scheduler.h"
#include "simmpi/world.h"
#include "threading/circular_buffer.h"
#include "threading/thread_pool.h"

namespace {

using namespace smart;
using namespace smart::analytics;

std::vector<double> bench_data(std::size_t n) {
  Rng rng(4242);
  return rng.gaussian_vector(n);
}

// --- reduction-map operations ----------------------------------------------

void BM_ReductionMapAccumulate(benchmark::State& state) {
  // The inner loop of Smart's reduction phase: locate by key, accumulate in
  // place (no KV pair emission).
  register_red_objs();
  CombinationMap map;
  const auto keys = static_cast<int>(state.range(0));
  std::size_t i = 0;
  for (auto _ : state) {
    const int key = static_cast<int>(i++ % static_cast<std::size_t>(keys));
    auto& slot = map[key];
    if (!slot) slot = std::make_unique<Bucket>();
    static_cast<Bucket&>(*slot).count += 1;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_ReductionMapAccumulate)->Arg(100)->Arg(1200)->Arg(10000);

void BM_LegacyStdMapAccumulate(benchmark::State& state) {
  // The structure CombinationMap replaced — the same accumulate loop over a
  // std::map (red-black tree) — kept as the before side of the flat-map
  // comparison recorded in BENCH_core.json.
  register_red_objs();
  std::map<int, std::unique_ptr<RedObj>> map;
  const auto keys = static_cast<int>(state.range(0));
  std::size_t i = 0;
  for (auto _ : state) {
    const int key = static_cast<int>(i++ % static_cast<std::size_t>(keys));
    auto& slot = map[key];
    if (!slot) slot = std::make_unique<Bucket>();
    static_cast<Bucket&>(*slot).count += 1;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_LegacyStdMapAccumulate)->Arg(100)->Arg(1200)->Arg(10000);

void BM_CombinationMapInsert(benchmark::State& state) {
  // Cold-map seeding cost: N fresh inserts (hash + append) per iteration.
  register_red_objs();
  const int keys = static_cast<int>(state.range(0));
  for (auto _ : state) {
    CombinationMap map;
    for (int k = 0; k < keys; ++k) map.emplace(k, std::make_unique<Bucket>());
    benchmark::DoNotOptimize(map);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * keys);
}
BENCHMARK(BM_CombinationMapInsert)->Arg(100)->Arg(10000);

void BM_LegacyStdMapInsert(benchmark::State& state) {
  register_red_objs();
  const int keys = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::map<int, std::unique_ptr<RedObj>> map;
    for (int k = 0; k < keys; ++k) map.emplace(k, std::make_unique<Bucket>());
    benchmark::DoNotOptimize(map);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * keys);
}
BENCHMARK(BM_LegacyStdMapInsert)->Arg(100)->Arg(10000);

void BM_MapCodec(benchmark::State& state) {
  // Wire-format comparison: v1 (per-entry type-name strings, per-entry
  // registry locks) vs v2 (interned type table, varint indices, per-type
  // factory resolution).  The wire_bytes counter shows the payload-size
  // drop that RUNSTATS wire_bytes lines inherit.
  register_red_objs();
  const bool v1 = state.range(0) != 0;
  CombinationMap map;
  for (int k = 0; k < state.range(1); ++k) {
    auto b = std::make_unique<Bucket>();
    b->count = static_cast<std::size_t>(k);
    map.emplace(k, std::move(b));
  }
  std::size_t wire_bytes = 0;
  for (auto _ : state) {
    Buffer buf;
    if (v1) {
      serialize_map_v1(map, buf);
    } else {
      serialize_map(map, buf);
    }
    wire_bytes = buf.size();
    benchmark::DoNotOptimize(deserialize_map(buf));
  }
  state.SetLabel(v1 ? "v1" : "v2");
  state.counters["wire_bytes"] = benchmark::Counter(static_cast<double>(wire_bytes));
}
BENCHMARK(BM_MapCodec)->Args({1, 100})->Args({0, 100})->Args({1, 10000})->Args({0, 10000});

void BM_LocalCombine(benchmark::State& state) {
  // The scheduler's local-combination phase in isolation: 8 worker maps of
  // N buckets each fold into one, serially (worker-after-worker, the old
  // path) or as the pool's binomial merge tree (parallel_local_combine).
  register_red_objs();
  const bool parallel = state.range(0) != 0;
  const int keys = static_cast<int>(state.range(1));
  constexpr int kWorkers = 8;
  ThreadPool pool(kWorkers);
  const MergeFn merge = [](const RedObj& red, std::unique_ptr<RedObj>& com) {
    static_cast<Bucket&>(*com).count += static_cast<const Bucket&>(red).count;
  };
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<CombinationMap> maps(kWorkers);
    for (auto& m : maps) {
      for (int k = 0; k < keys; ++k) {
        auto b = std::make_unique<Bucket>();
        b->count = 1;
        m.emplace(k, std::move(b));
      }
    }
    state.ResumeTiming();
    if (parallel) {
      for (std::size_t dist = 1; dist < kWorkers; dist *= 2) {
        pool.parallel_region([&](int w) {
          const auto uw = static_cast<std::size_t>(w);
          if (uw % (2 * dist) != 0) return;
          const std::size_t src = uw + dist;
          if (src >= kWorkers) return;
          merge_map_into(std::move(maps[src]), maps[uw], merge);
        });
      }
      benchmark::DoNotOptimize(maps[0]);
    } else {
      CombinationMap fresh;
      for (auto& m : maps) merge_map_into(std::move(m), fresh, merge);
      benchmark::DoNotOptimize(fresh);
    }
  }
  state.SetLabel(parallel ? "parallel" : "serial");
}
BENCHMARK(BM_LocalCombine)->Args({0, 512})->Args({1, 512})->Args({0, 8192})->Args({1, 8192});

void BM_MapSerializeRoundTrip(benchmark::State& state) {
  // The global-combination cost unit: serialize + deserialize a map.
  register_red_objs();
  CombinationMap map;
  for (int k = 0; k < state.range(0); ++k) {
    auto b = std::make_unique<Bucket>();
    b->count = static_cast<std::size_t>(k);
    map.emplace(k, std::move(b));
  }
  for (auto _ : state) {
    Buffer buf;
    serialize_map(map, buf);
    benchmark::DoNotOptimize(deserialize_map(buf));
  }
}
BENCHMARK(BM_MapSerializeRoundTrip)->Arg(100)->Arg(1200)->Arg(10000);

void BM_RedObjClone(benchmark::State& state) {
  ClusterObj obj;
  obj.centroid.assign(64, 1.0);
  obj.sum.assign(64, 2.0);
  for (auto _ : state) benchmark::DoNotOptimize(obj.clone());
}
BENCHMARK(BM_RedObjClone);

// --- threading substrate -----------------------------------------------------

void BM_CircularBufferPushPop(benchmark::State& state) {
  CircularBuffer<std::vector<double>> buf(4);
  std::vector<double> cell(static_cast<std::size_t>(state.range(0)), 1.0);
  for (auto _ : state) {
    buf.push(cell);
    benchmark::DoNotOptimize(buf.pop());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0) *
                          static_cast<std::int64_t>(sizeof(double)));
}
BENCHMARK(BM_CircularBufferPushPop)->Arg(1024)->Arg(65536);

void BM_ThreadPoolRegionLatency(benchmark::State& state) {
  ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    pool.parallel_region([](int) {});
  }
}
BENCHMARK(BM_ThreadPoolRegionLatency)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// --- simmpi ------------------------------------------------------------------

void BM_SimmpiPingPong(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    simmpi::launch(2, [&](simmpi::Communicator& comm) {
      Buffer payload(bytes);
      if (comm.rank() == 0) {
        comm.send(1, 0, std::move(payload));
        (void)comm.recv(1, 1);
      } else {
        Buffer got = comm.recv(0, 0);
        comm.send(0, 1, std::move(got));
      }
    });
  }
}
BENCHMARK(BM_SimmpiPingPong)->Arg(64)->Arg(65536);

void BM_SimmpiAllreduce(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    simmpi::launch(nranks, [](simmpi::Communicator& comm) {
      std::vector<double> v(256, static_cast<double>(comm.rank()));
      benchmark::DoNotOptimize(comm.allreduce_sum(v));
    });
  }
}
BENCHMARK(BM_SimmpiAllreduce)->Arg(2)->Arg(4)->Arg(8);

void BM_SimmpiAllreduceAlgorithms(benchmark::State& state) {
  // Tree (latency-optimal) vs ring (bandwidth-optimal) on a larger vector.
  const bool ring = state.range(0) != 0;
  const std::size_t len = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    simmpi::launch(4, [&](simmpi::Communicator& comm) {
      std::vector<double> v(len, static_cast<double>(comm.rank()));
      if (ring) {
        benchmark::DoNotOptimize(comm.allreduce_sum_ring(v));
      } else {
        benchmark::DoNotOptimize(comm.allreduce_sum(v));
      }
    });
  }
  state.SetLabel(ring ? "ring" : "tree");
}
BENCHMARK(BM_SimmpiAllreduceAlgorithms)
    ->Args({0, 1 << 10})
    ->Args({1, 1 << 10})
    ->Args({0, 1 << 17})
    ->Args({1, 1 << 17});

void BM_MapCombineAlgorithms(benchmark::State& state) {
  // The MapCombiner crossover measurement: single-pass tree vs
  // key-partitioned ring over growing map sizes on 4 ranks.  The default
  // MapCombiner::kDefaultRingCrossoverBytes comes from where the two
  // virtual-makespan curves cross on the container.
  register_red_objs();
  const bool ring = state.range(0) != 0;
  const int keys = static_cast<int>(state.range(1));
  const MapCombiner::Algorithm algo =
      ring ? MapCombiner::Algorithm::kRing : MapCombiner::Algorithm::kTree;
  const MergeFn merge = [](const RedObj& red, std::unique_ptr<RedObj>& com) {
    auto& dst = static_cast<ClusterObj&>(*com);
    const auto& src = static_cast<const ClusterObj&>(red);
    for (std::size_t i = 0; i < dst.sum.size(); ++i) dst.sum[i] += src.sum[i];
    dst.size += src.size;
  };
  double makespan = 0.0;
  for (auto _ : state) {
    const auto stats = simmpi::launch(4, [&](simmpi::Communicator& comm) {
      CombinationMap map;
      for (int k = 0; k < keys; ++k) {
        auto obj = std::make_unique<ClusterObj>();
        obj->centroid.assign(8, static_cast<double>(k));
        obj->sum.assign(8, static_cast<double>(comm.rank()));
        obj->size = 1;
        obj->set_key(k);
        map.emplace(k, std::move(obj));
      }
      MapCombiner combiner(algo);
      combiner.allreduce(comm, map, merge);
      benchmark::DoNotOptimize(map);
    });
    makespan += stats.makespan();
  }
  state.SetLabel(ring ? "ring" : "tree");
  state.counters["vmakespan_s"] =
      benchmark::Counter(makespan / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_MapCombineAlgorithms)
    ->Args({0, 64})
    ->Args({1, 64})
    ->Args({0, 512})
    ->Args({1, 512})
    ->Args({0, 4096})
    ->Args({1, 4096});

// --- end-to-end analytics per element ---------------------------------------

void BM_HistogramEndToEnd(benchmark::State& state) {
  const auto data = bench_data(1 << 16);
  Histogram<double> hist(SchedArgs(static_cast<int>(state.range(0)), 1), -5.0, 5.0, 100);
  for (auto _ : state) {
    hist.run(data.data(), data.size(), nullptr, 0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_HistogramEndToEnd)->Arg(1)->Arg(4);

void BM_MovingAverageEndToEnd(benchmark::State& state) {
  const auto data = bench_data(1 << 14);
  const bool trigger = state.range(0) != 0;
  RunOptions opts;
  opts.enable_trigger = trigger;
  MovingAverage<double> ma(SchedArgs(2, 1), 25, opts);
  std::vector<double> out(data.size(), 0.0);
  for (auto _ : state) {
    ma.run2(data.data(), data.size(), out.data(), out.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
  state.SetLabel(trigger ? "early-emission" : "no-trigger");
}
BENCHMARK(BM_MovingAverageEndToEnd)->Arg(1)->Arg(0);

}  // namespace

BENCHMARK_MAIN();
