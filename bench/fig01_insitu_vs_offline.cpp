// Figure 1 — case study: in-situ vs offline (store-first-analyze-after)
// k-means clustering on Heat3D output, varying the k-means iteration count.
//
// Paper: 1 TB over Heat3D time-steps, 64 cores, time sharing; offline
// writes all steps to disk and loads them back; in-situ outperforms by up
// to 10.4x, dominated by the offline I/O overhead.
//
// This harness runs the identical analytics code in both modes (the same
// KMeans scheduler — Smart's in-situ/offline code identity) and reports
// total time plus the offline I/O component.
#include "analytics/kmeans.h"
#include "baselines/offline.h"
#include "bench/bench_util.h"
#include "sim/heat3d.h"
#include "simmpi/world.h"

namespace {

using namespace smart;
using analytics::KMeans;
using analytics::KMeansInit;

struct ModeResult {
  double total_wall = 0.0;
  double io_seconds = 0.0;
  double makespan = 0.0;
};

constexpr int kRanks = 4;
constexpr std::size_t kK = 8;
constexpr std::size_t kDims = 4;  // chunks of 4 grid values as feature vectors

sim::Heat3D::Params heat_params() {
  sim::Heat3D::Params p;
  p.nx = 32;
  p.ny = 32;
  p.nz_local = smart::bench::scaled(24);
  return p;
}

std::vector<double> initial_centroids() {
  std::vector<double> init(kK * kDims);
  Rng rng(17);
  for (auto& c : init) c = rng.uniform(0.0, 1.0);
  return init;
}

ModeResult run_insitu(int steps, int kmeans_iters) {
  const auto init = initial_centroids();
  WallTimer wall;
  auto stats = simmpi::launch(kRanks, [&](simmpi::Communicator& comm) {
    sim::Heat3D heat(heat_params(), &comm);
    KMeansInit seed{init.data(), kK, kDims};
    KMeans<double> km(SchedArgs(2, kDims, &seed, kmeans_iters), kK, kDims);
    for (int s = 0; s < steps; ++s) {
      heat.step();
      // Time sharing: the analytics reads the simulation slab in place.
      km.run(heat.output(), heat.output_len(), nullptr, 0);
    }
  });
  ModeResult r;
  r.total_wall = wall.seconds();
  r.makespan = stats.makespan();
  return r;
}

ModeResult run_offline(int steps, int kmeans_iters) {
  const auto init = initial_centroids();
  std::vector<baselines::StepStore> stores;
  for (int r = 0; r < kRanks; ++r) stores.emplace_back("/tmp/smart_fig01_store");

  WallTimer wall;
  // Phase 1: simulate and persist every step (store first).
  auto sim_stats = simmpi::launch(kRanks, [&](simmpi::Communicator& comm) {
    sim::Heat3D heat(heat_params(), &comm);
    for (int s = 0; s < steps; ++s) {
      heat.step();
      stores[static_cast<std::size_t>(comm.rank())].write_step(comm.rank(), s, heat.output(),
                                                               heat.output_len());
    }
  });
  // Phase 2: load each step back and run the *same* analytics code.
  auto ana_stats = simmpi::launch(kRanks, [&](simmpi::Communicator& comm) {
    KMeansInit seed{init.data(), kK, kDims};
    KMeans<double> km(SchedArgs(2, kDims, &seed, kmeans_iters), kK, kDims);
    for (int s = 0; s < steps; ++s) {
      const auto data = stores[static_cast<std::size_t>(comm.rank())].read_step(comm.rank(), s);
      km.run(data.data(), data.size(), nullptr, 0);
    }
  });

  ModeResult r;
  r.total_wall = wall.seconds();
  r.makespan = sim_stats.makespan() + ana_stats.makespan();
  for (auto& store : stores) {
    r.io_seconds += store.write_seconds() + store.read_seconds();
    store.cleanup();
  }
  // I/O time is wall time each rank spends blocked on storage; fold the
  // per-rank average into the virtual makespan (storage is shared, so this
  // is the optimistic end).
  r.makespan += r.io_seconds / kRanks;
  return r;
}

}  // namespace

int main() {
  using smart::Table;
  smart::bench::print_header(
      "Figure 1: in-situ vs offline k-means on Heat3D",
      "1 TB, 64 cores, k-means iterations 1/5/10/20, 10.4x max speedup",
      "4 ranks x 2 threads, ~" +
          smart::format_bytes(heat_params().nx * heat_params().ny * heat_params().nz_local *
                              sizeof(double) * kRanks) +
          " per step, 8 steps");

  const int steps = 8;
  Table table({"kmeans_iters", "insitu_total_s", "offline_total_s", "offline_io_s",
               "offline_vs_insitu_x", "insitu_makespan_s", "offline_makespan_s"});
  for (const int iters : {1, 5, 10, 20}) {
    const ModeResult insitu = run_insitu(steps, iters);
    const ModeResult offline = run_offline(steps, iters);
    table.begin_row();
    table.add(iters);
    table.add(insitu.total_wall, 3);
    table.add(offline.total_wall, 3);
    table.add(offline.io_seconds, 3);
    table.add(offline.total_wall / insitu.total_wall, 2);
    table.add(insitu.makespan, 4);
    table.add(offline.makespan, 4);
  }
  smart::bench::finish(table, "fig01", "total processing time, in-situ vs offline");
  std::cout << "Expectation (paper shape): offline > in-situ at every iteration count;\n"
               "the gap shrinks as analytics iterations grow (compute amortizes I/O).\n";
  return 0;
}
