// Figure 6 — performance comparison with hand-written low-level (MPI +
// threads) analytics programs: k-means and logistic regression, varying
// rank count.
//
// Paper: 1 TB over 8-64 nodes; the low-level k-means beats Smart by up to
// 9% (Smart pays map-structure serialization in global combination), and
// logistic regression shows no noticeable difference (single key => trivial
// serialization).
#include "analytics/kmeans.h"
#include "analytics/logistic_regression.h"
#include "baselines/lowlevel.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "simmpi/world.h"

namespace {

using namespace smart;
using namespace smart::analytics;

constexpr std::size_t kDims = 64;
constexpr std::size_t kK = 8;
constexpr int kIters = 10;
constexpr std::size_t kLogRegDim = 15;
constexpr int kThreadsPerRank = 2;

struct Pair {
  double smart_makespan = 0.0;
  double lowlevel_makespan = 0.0;
};

/// Virtual makespans are a max over per-rank CPU clocks, which amplifies
/// scheduler noise when many ranks share few physical cores; the minimum
/// of a few repetitions is the stable estimator.
template <typename Fn>
double best_of(const Fn& fn, int reps = 3) {
  double best = fn();
  for (int r = 1; r < reps; ++r) best = std::min(best, fn());
  return best;
}

Pair bench_kmeans(const std::vector<double>& data, int nranks) {
  std::vector<double> init(kK * kDims);
  Rng rng(31);
  for (auto& c : init) c = rng.gaussian();
  const std::size_t points = data.size() / kDims;
  auto part = [&](int rank) {
    const std::size_t per = points / static_cast<std::size_t>(nranks);
    return std::pair<std::size_t, std::size_t>{static_cast<std::size_t>(rank) * per * kDims,
                                               per * kDims};
  };
  Pair out;
  out.smart_makespan = best_of([&] {
    return simmpi::launch(nranks, [&](simmpi::Communicator& comm) {
      const auto [offset, len] = part(comm.rank());
      KMeansInit seed{init.data(), kK, kDims};
      KMeans<double> km(SchedArgs(kThreadsPerRank, kDims, &seed, kIters), kK, kDims);
      km.run(data.data() + offset, len, nullptr, 0);
    }).makespan();
  });
  out.lowlevel_makespan = best_of([&] {
    return simmpi::launch(nranks, [&](simmpi::Communicator& comm) {
      const auto [offset, len] = part(comm.rank());
      ThreadPool pool(kThreadsPerRank);
      (void)baselines::lowlevel_kmeans(data.data() + offset, len / kDims, kDims, kK, kIters,
                                       init, pool, &comm);
    }).makespan();
  });
  return out;
}

Pair bench_logreg(const std::vector<double>& data, int nranks) {
  const std::size_t stride = kLogRegDim + 1;
  const std::size_t records = data.size() / stride;
  auto part = [&](int rank) {
    const std::size_t per = records / static_cast<std::size_t>(nranks);
    return std::pair<std::size_t, std::size_t>{static_cast<std::size_t>(rank) * per * stride,
                                               per * stride};
  };
  Pair out;
  out.smart_makespan = best_of([&] {
    return simmpi::launch(nranks, [&](simmpi::Communicator& comm) {
      const auto [offset, len] = part(comm.rank());
      LogisticRegression<double> reg(SchedArgs(kThreadsPerRank, stride, nullptr, kIters),
                                     kLogRegDim, 0.1);
      reg.run(data.data() + offset, len, nullptr, 0);
    }).makespan();
  });
  out.lowlevel_makespan = best_of([&] {
    return simmpi::launch(nranks, [&](simmpi::Communicator& comm) {
      const auto [offset, len] = part(comm.rank());
      ThreadPool pool(kThreadsPerRank);
      (void)baselines::lowlevel_logreg(data.data() + offset, len / stride, kLogRegDim, kIters,
                                       0.1, pool, &comm);
    }).makespan();
  });
  return out;
}

}  // namespace

int main() {
  const std::size_t n_doubles = smart::bench::scaled(1u << 22);
  smart::bench::print_header(
      "Figure 6: Smart vs hand-written low-level (MPI/threads) analytics",
      "1 TB over 8-64 nodes; low-level wins by <= 9% on k-means, ~0% on logreg",
      smart::format_bytes(n_doubles * sizeof(double)) + " per app, 2 threads/rank, virtual time");

  smart::Rng rng(32);
  const auto data = rng.gaussian_vector(n_doubles);

  smart::Table table({"app", "ranks", "smart_makespan_s", "lowlevel_makespan_s",
                      "smart_overhead_pct"});
  for (const int nranks : {2, 4, 8, 16}) {
    const Pair km = bench_kmeans(data, nranks);
    table.begin_row();
    table.add("kmeans");
    table.add(nranks);
    table.add(km.smart_makespan, 4);
    table.add(km.lowlevel_makespan, 4);
    table.add(100.0 * (km.smart_makespan / km.lowlevel_makespan - 1.0), 1);
  }
  for (const int nranks : {2, 4, 8, 16}) {
    const Pair lr = bench_logreg(data, nranks);
    table.begin_row();
    table.add("logreg");
    table.add(nranks);
    table.add(lr.smart_makespan, 4);
    table.add(lr.lowlevel_makespan, 4);
    table.add(100.0 * (lr.smart_makespan / lr.lowlevel_makespan - 1.0), 1);
  }
  smart::bench::finish(table, "fig06", "Smart vs low-level implementations");
  std::cout << "Expectation (paper shape): smart_overhead_pct small (paper: <= ~9% for\n"
               "k-means, unnoticeable for logistic regression), not growing out of control\n"
               "with rank count.\n";
  return 0;
}
