// Figure 8 — in-situ processing times with varying threads per node on
// Lulesh (MiniLulesh proxy), for all nine analytics.
//
// Paper: 1 TB over 93 steps on 64 nodes, 1..8 threads per node; 59% average
// parallel efficiency for the five record apps and 79% for the four
// window-based apps (more compute per element => synchronization weighs
// less).
#include "bench/bench_apps.h"
#include "bench/bench_util.h"
#include "sim/minilulesh.h"
#include "simmpi/world.h"

namespace {

using namespace smart;

constexpr int kRanks = 4;
constexpr int kSteps = 3;
const std::vector<int> kThreadCounts = {1, 2, 4, 8};

double run_once(const std::string& app_name, int threads, std::size_t edge) {
  auto stats = simmpi::launch(kRanks, [&](simmpi::Communicator& comm) {
    ThreadPool sim_pool(threads);
    sim::MiniLulesh lulesh({.edge = edge}, &comm, &sim_pool);
    // The energy field is positive and O(10) after the blast spreads.
    auto app = smart::bench::make_app(app_name, threads, 0.0, 16.0);
    for (int s = 0; s < kSteps; ++s) {
      lulesh.step();
      app->run(lulesh.output(), lulesh.output_len());
    }
  });
  return stats.makespan();
}

}  // namespace

int main() {
  const auto edge = static_cast<std::size_t>(40.0 * std::cbrt(smart::bench_scale()));
  smart::bench::print_header(
      "Figure 8: scaling threads per node on Lulesh (time sharing)",
      "1 TB, 93 steps, 64 nodes, 1-8 threads; parallel efficiency 59% (record apps) / 79% "
      "(window apps)",
      std::to_string(kRanks) + " ranks, edge " + std::to_string(edge) + " cube per rank, " +
          std::to_string(kSteps) + " steps, threads {1,2,4,8}, virtual makespan");

  smart::Table table({"app", "threads", "makespan_s", "speedup", "parallel_efficiency"});
  double record_eff = 0.0, window_eff = 0.0;
  int record_n = 0, window_n = 0;
  const auto& names = smart::bench::app_names();
  for (std::size_t a = 0; a < names.size(); ++a) {
    double base = 0.0;
    for (const int threads : kThreadCounts) {
      const double makespan = run_once(names[a], threads, edge);
      if (threads == 1) base = makespan;
      const double speedup = base / makespan;
      const double efficiency = speedup / threads;
      if (threads == 8) {
        if (a < 5) {
          record_eff += efficiency;
          ++record_n;
        } else {
          window_eff += efficiency;
          ++window_n;
        }
      }
      table.begin_row();
      table.add(names[a]);
      table.add(threads);
      table.add(makespan, 4);
      table.add(speedup, 2);
      table.add(efficiency, 2);
    }
  }
  smart::bench::finish(table, "fig08", "in-situ processing times vs threads (Lulesh)");
  std::cout << "8-thread parallel efficiency: record apps "
            << (record_n ? record_eff / record_n : 0.0) << " (paper 0.59), window apps "
            << (window_n ? window_eff / window_n : 0.0) << " (paper 0.79)\n"
            << "Expectation (paper shape): window-based apps hold higher efficiency than the\n"
               "record apps because their per-element compute dominates synchronization.\n";
  return 0;
}
