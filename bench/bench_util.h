// Shared helpers for the per-figure benchmark harnesses.
//
// Every harness prints (a) the same series the paper's figure plots, as an
// aligned table, and (b) a machine-readable CSV block.  Workload sizes are
// MB-scale by default (this is a containerized reproduction; see
// EXPERIMENTS.md) and multiply by SMART_BENCH_SCALE.
//
// Timing convention: on a machine with fewer cores than simulated ranks,
// wall time cannot show scaling, so harnesses report the *virtual makespan*
// (max over ranks of the LogP-style virtual clock, simmpi/communicator.h)
// alongside wall time.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/memory_tracker.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/timing.h"
#include "core/run_stats.h"

namespace smart::bench {

/// Scales a base element count by SMART_BENCH_SCALE.
inline std::size_t scaled(std::size_t base) {
  const double s = bench_scale();
  return static_cast<std::size_t>(static_cast<double>(base) * s);
}

inline void print_header(const std::string& figure, const std::string& paper_setup,
                         const std::string& our_setup) {
  std::cout << "================================================================\n"
            << figure << "\n"
            << "  paper setup: " << paper_setup << "\n"
            << "  this run:    " << our_setup << "\n"
            << "  (SMART_BENCH_SCALE=" << bench_scale() << ")\n"
            << "================================================================\n";
}

inline void finish(Table& table, const std::string& tag, const std::string& title) {
  table.print(std::cout, title);
  table.print_csv(std::cout, tag);
  std::cout << std::endl;
}

/// One machine-readable scheduler-stat line per experiment leg:
///   RUNSTATS <tag> {"runs": ..., "chunks_processed": ..., ...}
/// The JSON shape is RunStats::dump_json, so every harness reports the
/// complete stat set uniformly instead of hand-picking fields.
inline void print_run_stats(const std::string& tag, const RunStats& stats) {
  std::cout << "RUNSTATS " << tag << " ";
  stats.dump_json(std::cout);
  std::cout << "\n";
}

/// Resets the process-wide memory tracker between experiment legs.
inline void reset_memory(std::size_t budget_bytes = 0) {
  auto& t = MemoryTracker::instance();
  t.reset();
  t.set_budget(budget_bytes);
}

}  // namespace smart::bench
