// Quickstart: the smallest complete Smart program.
//
// Builds the paper's Listing 3 histogram over one simulated time-step and
// prints the buckets — a sequential programming view over a parallel
// reduction, with no key-value pairs and no shuffle.
//
//   $ ./quickstart
#include <iostream>

#include "analytics/histogram.h"
#include "sim/emulator.h"

int main() {
  using namespace smart;

  // A stand-in simulation: one time-step of 1M gaussian doubles in memory.
  sim::Emulator emulator({.step_len = 1u << 20, .mean = 0.0, .stddev = 1.0, .seed = 7});
  const double* step_data = emulator.step();

  // SchedArgs(threads, chunk_size): 4 analytics threads, 1 element per
  // chunk.  The Histogram scheduler implements gen_key / accumulate /
  // merge (paper Listing 3); everything else is the runtime's job.
  analytics::Histogram<double> histogram(SchedArgs(4, 1), /*min=*/-4.0, /*max=*/4.0,
                                         /*num_buckets=*/16);

  std::vector<std::size_t> counts(16, 0);
  histogram.run(step_data, emulator.step_len(), counts.data(), counts.size());

  std::cout << "histogram of one simulated time-step (1M gaussian samples):\n";
  std::size_t max_count = 1;
  for (std::size_t c : counts) max_count = std::max(max_count, c);
  for (int b = 0; b < 16; ++b) {
    const double lo = histogram.bucket_low(b);
    const int bar = static_cast<int>(60.0 * static_cast<double>(counts[b]) /
                                     static_cast<double>(max_count));
    std::printf("  [%+5.2f, %+5.2f) %8zu  %s\n", lo, lo + 0.5, counts[b],
                std::string(static_cast<std::size_t>(bar), '#').c_str());
  }
  std::cout << "\nprocessed " << histogram.stats().elements_processed << " elements on "
            << histogram.num_threads() << " threads; peak reduction objects: "
            << histogram.stats().peak_reduction_objects << "\n";
  return 0;
}
