// Window-based in-situ preprocessing with early emission: MiniLulesh +
// Savitzky-Golay smoothing and moving median, the paper's Section 4
// workloads.
//
// Window analytics produce a *per-partition* output (global combination is
// off), and the trigger mechanism emits each window's reduction object the
// moment it is complete, so the live object count stays at O(window)
// instead of O(step size) — watch the peak_objects column.
//
//   $ ./lulesh_window_smoothing
#include <cstdio>
#include <vector>

#include "analytics/moving_median.h"
#include "analytics/savitzky_golay.h"
#include "sim/minilulesh.h"
#include "simmpi/world.h"

int main() {
  using namespace smart;
  constexpr int kRanks = 2;
  constexpr int kSteps = 4;

  simmpi::launch(kRanks, [&](simmpi::Communicator& comm) {
    sim::MiniLulesh lulesh({.edge = 20}, &comm);

    // A smoothing pipeline on the energy field: Savitzky-Golay filter
    // (window 9, quadratic) for denoising and a moving median (window 11)
    // for spike rejection — both window-based Smart jobs using run2.
    analytics::SavitzkyGolay<double> smoother(SchedArgs(2, 1), /*window=*/9, /*poly_order=*/2);
    analytics::MovingMedian<double> median(SchedArgs(2, 1), /*window=*/11);

    std::vector<double> smoothed(lulesh.output_len(), 0.0);
    std::vector<double> medians(lulesh.output_len(), 0.0);

    for (int step = 0; step < kSteps; ++step) {
      lulesh.step();
      smoother.run2(lulesh.output(), lulesh.output_len(), smoothed.data(), smoothed.size());
      median.run2(lulesh.output(), lulesh.output_len(), medians.data(), medians.size());

      if (comm.rank() == 0) {
        // Two probes: next to the blast front (where the polynomial filter
        // rings, the classic Savitzky-Golay overshoot at a shock, while
        // the median stays robust) and deep in the quiet region.
        const std::size_t shock = 5;
        const std::size_t quiet = lulesh.output_len() / 2;
        std::printf(
            "step %d  shock: raw=%.3f sg=%.3f median=%.3f | quiet: raw=%.3f sg=%.3f "
            "median=%.3f | peak objs sg=%zu med=%zu, early emitted %zu+%zu\n",
            step + 1, lulesh.output()[shock], smoothed[shock], medians[shock],
            lulesh.output()[quiet], smoothed[quiet], medians[quiet],
            smoother.stats().peak_reduction_objects, median.stats().peak_reduction_objects,
            smoother.stats().early_emissions, median.stats().early_emissions);
      }
    }
    if (comm.rank() == 0) {
      std::printf(
          "\n%zu elements per step, but only ~window-many reduction objects were ever\n"
          "live at once thanks to early emission (Algorithm 2).\n",
          lulesh.output_len());
    }
  });
  return 0;
}
