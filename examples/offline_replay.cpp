// Offline replay: the SAME analytics code, store-first-analyze-after.
//
// The paper's motivating property (Section 1.1): under Smart's API the
// in-situ and offline analytics codes are identical — only the data source
// changes.  This example simulates a short Heat3D run, persists every step
// with the StepStore, then replays the files through the same
// MutualInformation scheduler an in-situ run would use, and reports the I/O
// that in-situ processing would have avoided (the paper's Figure 1 story).
//
//   $ ./offline_replay
#include <cstdio>

#include "analytics/mutual_information.h"
#include "common/table.h"
#include "baselines/offline.h"
#include "sim/heat3d.h"

int main() {
  using namespace smart;
  constexpr int kSteps = 5;

  baselines::StepStore store("/tmp/smart_offline_replay");

  // Phase 1: simulate and persist (what a traditional pipeline does).
  {
    sim::Heat3D heat({.nx = 24, .ny = 24, .nz_local = 24}, nullptr);
    for (int step = 0; step < kSteps; ++step) {
      heat.step();
      store.write_step(/*rank=*/0, step, heat.output(), heat.output_len());
    }
  }

  // Phase 2: load each step back and run the analytics — the code below is
  // byte-for-byte what the in-situ loop would call on heat.output().
  analytics::MutualInformation<double> mi(SchedArgs(2, 2), 0.0, 1.0, 32, 32);
  for (int step = 0; step < kSteps; ++step) {
    const std::vector<double> data = store.read_step(0, step);
    mi.run(data.data(), data.size(), nullptr, 0);
    std::printf("step %d  MI(adjacent temperature pairs) = %.4f nats\n", step + 1, mi.mi());
  }

  std::printf("\nstore-first-analyze-after I/O this run paid (and in-situ avoids):\n"
              "  wrote %s in %s, read %s back in %s\n",
              format_bytes(store.bytes_written()).c_str(),
              format_seconds(store.write_seconds()).c_str(),
              format_bytes(store.bytes_read()).c_str(),
              format_seconds(store.read_seconds()).c_str());
  store.cleanup();
  return 0;
}
