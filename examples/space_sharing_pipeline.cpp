// Space-sharing mode (paper Listing 2 / Figure 4): the simulation and the
// analytics run as two CONCURRENT tasks on disjoint thread groups, coupled
// by Smart's internal circular buffer.
//
// The simulation task feeds each time-step's output into a buffer cell
// (blocking when all cells are full — backpressure); the analytics task
// pops steps and maintains a running histogram plus a mutual-information
// estimate between the energy field and its own one-step-delayed self.
//
//   $ ./space_sharing_pipeline
#include <cstdio>
#include <thread>
#include <vector>

#include "analytics/histogram.h"
#include "common/table.h"
#include "sim/emulator.h"

int main() {
  using namespace smart;
  constexpr int kSteps = 12;
  constexpr std::size_t kStepLen = 1u << 18;

  // Accumulate across steps so the final histogram covers the whole run.
  RunOptions opts;
  opts.accumulate_across_runs = true;
  opts.buffer_cells = 3;  // small buffer: the producer will feel backpressure
  analytics::Histogram<double> histogram(SchedArgs(2, 1), -4.0, 4.0, 12, opts);

  // --- simulation task (producer) -----------------------------------------
  std::thread simulation_task([&] {
    sim::Emulator emulator({.step_len = kStepLen, .seed = 99});
    for (int step = 0; step < kSteps; ++step) {
      const double* data = emulator.step();
      histogram.feed(data, kStepLen);  // copies into a cell; blocks when full
    }
    histogram.close_feed();  // end of stream
  });

  // --- analytics task (consumer) -------------------------------------------
  int analyzed = 0;
  std::vector<std::size_t> counts(12, 0);
  while (histogram.run(counts.data(), counts.size())) {
    ++analyzed;
    std::printf("analyzed step %2d (buffered copies charged: %s)\n", analyzed,
                format_bytes(MemoryTracker::instance().current_in(MemCategory::kInputCopy))
                    .c_str());
  }
  simulation_task.join();

  std::printf("\nfinal histogram over all %d steps (%zu samples):\n", analyzed,
              histogram.stats().elements_processed);
  std::size_t max_count = 1;
  for (std::size_t c : counts) max_count = std::max(max_count, c);
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const int bar = static_cast<int>(50.0 * static_cast<double>(counts[b]) /
                                     static_cast<double>(max_count));
    std::printf("  bucket %2zu %9zu  %s\n", b, counts[b],
                std::string(static_cast<std::size_t>(bar), '#').c_str());
  }
  std::printf("\ncopy time spent by feed(): %s — the price space sharing pays for\n"
              "overlap; time sharing avoids it entirely (Figure 9).\n",
              format_seconds(histogram.stats().copy_seconds).c_str());
  return 0;
}
