// In-situ iterative analytics across a simulated cluster: Heat3D + k-means
// in time-sharing mode (the paper's Figure 1 / Listing 1 scenario).
//
// Four simmpi ranks each own a slab of the global heat-diffusion domain.
// After every simulation step, each rank launches the SAME Smart k-means
// job on its in-memory slab (zero copy); the global combination gives every
// rank the cluster centroids of the *global* temperature field, and the
// centroids of one step seed the next step — the paper's "tracking the
// movement of centroids across time-steps".
//
//   $ ./heat3d_kmeans
#include <cstdio>
#include <vector>

#include "analytics/kmeans.h"
#include "sim/heat3d.h"
#include "simmpi/world.h"

int main() {
  using namespace smart;
  constexpr int kRanks = 4;
  constexpr int kSteps = 6;
  constexpr std::size_t kK = 4;     // temperature clusters
  constexpr std::size_t kDims = 1;  // scalar field: 1-D feature

  simmpi::launch(kRanks, [&](simmpi::Communicator& comm) {
    ThreadPool sim_pool(2);
    sim::Heat3D heat({.nx = 24, .ny = 24, .nz_local = 16}, &comm, &sim_pool);

    // Initial centroids spread over the temperature range [0, 1]; each
    // step re-seeds from the previous step's result.
    std::vector<double> centroids = {0.1, 0.4, 0.7, 0.95};

    for (int step = 0; step < kSteps; ++step) {
      heat.step();

      analytics::KMeansInit seed{centroids.data(), kK, kDims};
      analytics::KMeans<double> kmeans(SchedArgs(2, kDims, &seed, /*num_iters=*/8), kK, kDims);
      // Time sharing: the analytics reads the simulation slab in place —
      // only these three lines are added to the simulation loop.
      kmeans.run(heat.output(), heat.output_len(), nullptr, 0);
      centroids = kmeans.centroids();

      if (comm.rank() == 0) {
        std::printf("step %2d  centroid temperatures:", step + 1);
        for (double c : centroids) std::printf("  %.4f", c);
        std::printf("\n");
      }
    }
    if (comm.rank() == 0) {
      std::printf("\nEvery rank holds the same global centroids after the global\n"
                  "combination; re-seeding each step tracks how the heat front\n"
                  "moves through the domain.\n");
    }
  });
  return 0;
}
