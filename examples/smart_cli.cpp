// smart_cli: a command-line driver over the whole stack — pick a
// simulation, an analytics job, rank/thread counts and an in-situ mode, and
// it runs the pipeline and reports results and runtime statistics.
//
//   $ ./smart_cli --sim heat3d --app histogram --ranks 4 --threads 2 --steps 5
//   $ ./smart_cli --sim lulesh --app moving_median --mode space
//   $ ./smart_cli --sim heat3d --app summary --render /tmp/slab.pgm
//   $ ./smart_cli --list
#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>

#include "analytics/render.h"
#include "analytics/summary_stats.h"
#include "analytics/top_k.h"
#include "bench/bench_apps.h"
#include "common/arg_parser.h"
#include "common/table.h"
#include "common/trace.h"
#include "obs/attribution.h"
#include "obs/critpath.h"
#include "obs/gather.h"
#include "sim/emulator.h"
#include "sim/heat3d.h"
#include "sim/minilulesh.h"
#include "simmpi/world.h"

namespace {

using namespace smart;

/// A uniform facade over the three simulations.
class SimDriver {
 public:
  SimDriver(const std::string& kind, simmpi::Communicator* comm, ThreadPool* pool,
            std::size_t size_hint, std::uint64_t master_seed)
      : kind_(kind) {
    if (kind == "heat3d") {
      heat_ = std::make_unique<sim::Heat3D>(
          sim::Heat3D::Params{.nx = 32, .ny = 32, .nz_local = size_hint}, comm, pool);
    } else if (kind == "lulesh") {
      lulesh_ = std::make_unique<sim::MiniLulesh>(sim::MiniLulesh::Params{.edge = size_hint},
                                                  comm, pool);
    } else if (kind == "emulator") {
      // Each rank's stream is derived from the one master seed, so --seed
      // reproduces the whole cluster's data and ranks stay decorrelated.
      emulator_ = std::make_unique<sim::Emulator>(sim::Emulator::Params{
          .step_len = size_hint * size_hint * 4,
          .seed = derive_seed(master_seed, static_cast<std::uint64_t>(comm->rank()))});
    } else {
      throw std::invalid_argument("unknown --sim '" + kind + "' (heat3d|lulesh|emulator)");
    }
  }

  const double* step() {
    if (heat_) {
      heat_->step();
      return heat_->output();
    }
    if (lulesh_) {
      lulesh_->step();
      return lulesh_->output();
    }
    return emulator_->step();
  }

  std::size_t output_len() const {
    if (heat_) return heat_->output_len();
    if (lulesh_) return lulesh_->output_len();
    return emulator_->step_len();
  }

  /// Last step's output without advancing (safe on a single rank).
  const double* output() const {
    if (heat_) return heat_->output();
    if (lulesh_) return lulesh_->output();
    return emulator_->buffer().data();
  }

  double data_min() const { return kind_ == "emulator" ? -5.0 : 0.0; }
  double data_max() const { return kind_ == "heat3d" ? 1.0 : (kind_ == "lulesh" ? 16.0 : 5.0); }

 private:
  std::string kind_;
  std::unique_ptr<sim::Heat3D> heat_;
  std::unique_ptr<sim::MiniLulesh> lulesh_;
  std::unique_ptr<sim::Emulator> emulator_;
};

void list_choices() {
  std::cout << "simulations: heat3d lulesh emulator\nanalytics:  ";
  for (const auto& name : smart::bench::app_names()) std::cout << " " << name;
  std::cout << " summary topk\nmodes:       time space\n";
}

/// Writes the attribution outputs for a path result; `out` may be "-" for
/// stdout.  Shared by the post-run analysis and --critpath-in.
int emit_critpath(const obs::CritPathResult& path, const std::string& out,
                  const std::string& json_out) {
  const obs::AttributionReport report = obs::attribute(path);
  int rc = 0;
  if (out == "-") {
    obs::write_report(std::cout, report);
  } else if (!out.empty()) {
    if (obs::write_report_file(out, report)) {
      std::printf("critical-path report written to %s\n", out.c_str());
    } else {
      std::fprintf(stderr, "error: could not write critical-path report to %s\n", out.c_str());
      rc = 1;
    }
  }
  if (!json_out.empty()) {
    if (obs::write_attribution_json_file(json_out, report)) {
      std::printf("critical-path attribution written to %s\n", json_out.c_str());
    } else {
      std::fprintf(stderr, "error: could not write attribution JSON to %s\n", json_out.c_str());
      rc = 1;
    }
  }
  return rc;
}

int run(const ArgParser& args) {
  const std::string critpath_out = args.has("critpath-out") ? args.get("critpath-out") : "";
  const std::string critpath_json = args.has("critpath-json") ? args.get("critpath-json") : "";
  if (args.has("critpath-in")) {
    // Offline mode: analyze a saved trace instead of running a pipeline.
    obs::ChromeTrace trace;
    std::string error;
    if (!obs::read_chrome_trace_file(args.get("critpath-in"), trace, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    return emit_critpath(obs::extract_critical_path(trace.events, trace.dropped_events),
                         critpath_out.empty() && critpath_json.empty() ? "-" : critpath_out,
                         critpath_json);
  }

  const std::string sim_kind = args.get("sim");
  const std::string app_name = args.get("app");
  const int ranks = static_cast<int>(args.get_long("ranks"));
  const int threads = static_cast<int>(args.get_long("threads"));
  const int steps = static_cast<int>(args.get_long("steps"));
  const std::string mode = args.get("mode");
  const auto size_hint = static_cast<std::size_t>(args.get_long("size"));
  if (mode != "time" && mode != "space") {
    throw std::invalid_argument("--mode must be 'time' or 'space'");
  }

  // Interconnect model: SMART_NET_* environment first, explicit flags win.
  simmpi::NetworkConfig net_cfg = simmpi::NetworkConfig::from_env();
  if (args.has("net-model")) net_cfg.model = args.get("net-model");
  if (args.has("net-alpha")) net_cfg.alpha_seconds = args.get_double("net-alpha");
  if (args.has("net-beta")) net_cfg.beta_bytes_per_second = args.get_double("net-beta");
  if (args.has("ranks-per-node")) {
    net_cfg.ranks_per_node = static_cast<int>(args.get_long("ranks-per-node"));
  }
  if (args.has("net-lane-cap")) {
    net_cfg.lane_capacity_msgs = static_cast<std::size_t>(args.get_long("net-lane-cap"));
  }
  if (args.has("net-lane-cap-bytes")) {
    net_cfg.lane_capacity_bytes = static_cast<std::size_t>(args.get_long("net-lane-cap-bytes"));
  }

  // Reproducibility: one master seed for the run (rank streams derive from
  // it), plus the deterministic schedule-exploration knobs.  A failing
  // explored schedule is reproduced with
  //   --schedule replay --schedule-trace "<string the harness printed>".
  const auto master_seed = static_cast<std::uint64_t>(args.get_long("seed"));
  if (args.has("schedule")) net_cfg.sched_policy = args.get("schedule");
  net_cfg.sched_seed = args.has("schedule-seed")
                           ? static_cast<std::uint64_t>(args.get_long("schedule-seed"))
                           : master_seed;
  if (args.has("schedule-trace")) net_cfg.sched_trace = args.get("schedule-trace");
  const auto net = simmpi::make_network_model(net_cfg);

  const std::string trace_out = args.has("trace-out") ? args.get("trace-out") : "";
  const std::string metrics_out = args.has("metrics-out") ? args.get("metrics-out") : "";
  const std::string phase_csv = args.has("phase-csv") ? args.get("phase-csv") : "";
  if (!trace_out.empty() || !critpath_out.empty() || !critpath_json.empty()) {
    obs::TraceCollector::instance().set_enabled(true);
  }
  if (!metrics_out.empty()) obs::set_metrics_enabled(true);
  // One tracer across ranks: it is mutex-protected and assigns dense thread
  // ids, so the CSV shows every rank's phases on one timeline.
  PhaseTracer phase_tracer;
  PhaseTracer* tracer = phase_csv.empty() ? nullptr : &phase_tracer;

  WallTimer wall;
  auto stats = simmpi::launch(ranks, [&](simmpi::Communicator& comm) {
    ThreadPool sim_pool(threads);
    SimDriver sim(sim_kind, &comm, &sim_pool, size_hint, master_seed);

    // The app body runs inside this nested lambda so that its early
    // returns still fall through to the trace gather below — the gather is
    // collective, so every rank must reach it.
    const auto run_app = [&] {
    // The special-cased apps produce scalar reports; everything else goes
    // through the shared bench facade.
    if (app_name == "summary") {
      analytics::SummaryStats<double> job(SchedArgs(threads, 1));
      job.set_phase_tracer(tracer);
      for (int s = 0; s < steps; ++s) {
        const double* data = sim.step();
        job.run(data, sim.output_len(), nullptr, 0);
        if (comm.rank() == 0) {
          const auto s_ = job.summary();
          std::printf("step %d: n=%zu mean=%.5f sd=%.5f min=%.5f max=%.5f\n", s + 1, s_.count,
                      s_.mean, s_.stddev, s_.min, s_.max);
        }
      }
      if (comm.rank() == 0 && args.has("render")) {
        // Render the last step's first plane (no further stepping: a
        // rank-0-only step would deadlock the halo exchange).
        const std::size_t nx = 32;
        const std::size_t ny = std::min<std::size_t>(32, sim.output_len() / nx);
        analytics::write_pgm(analytics::render_plane(sim.output(), nx, ny), args.get("render"));
        std::printf("rendered %zux%zu plane to %s\n", nx, ny, args.get("render").c_str());
      }
      return;
    }
    if (app_name == "topk") {
      analytics::TopK<double> job(SchedArgs(threads, 1), 5);
      job.set_phase_tracer(tracer);
      for (int s = 0; s < steps; ++s) {
        const double* data = sim.step();
        job.run(data, sim.output_len(), nullptr, 0);
      }
      if (comm.rank() == 0) {
        std::printf("top-5 hotspots of the final step:\n");
        for (const auto& item : job.top()) {
          std::printf("  value %.6f at position %llu\n", item.value,
                      static_cast<unsigned long long>(item.position));
        }
      }
      return;
    }

    auto app = smart::bench::make_app(app_name, threads, sim.data_min(), sim.data_max());
    app->set_phase_tracer(tracer);
    app->set_master_seed(static_cast<std::size_t>(master_seed));
    if (mode == "time") {
      for (int s = 0; s < steps; ++s) app->run(sim.step(), sim.output_len());
    } else {
      // Space sharing: a private histogram engine drives the feed/run pair
      // (the facade's schedulers expose run(data, len) only), so the CLI
      // demonstrates the mode with the bucketed app it maps to.
      analytics::Histogram<double> hist(SchedArgs(threads, 1), sim.data_min(), sim.data_max(),
                                        256);
      hist.set_global_combination(false);
      hist.set_phase_tracer(tracer);
      std::thread analytics_task([&] {
        while (hist.run(nullptr, 0)) {
        }
      });
      for (int s = 0; s < steps; ++s) {
        const double* data = sim.step();
        hist.feed(data, sim.output_len());
      }
      hist.close_feed();
      analytics_task.join();
      if (comm.rank() == 0) {
        std::printf("space-sharing run complete; %zu elements analyzed\n",
                    hist.stats().elements_processed);
      }
      return;
    }
    if (comm.rank() == 0) {
      std::cout << "RUNSTATS " << app_name << " ";
      app->stats().dump_json(std::cout);
      std::cout << "\n";
    }
    };  // run_app

    run_app();

    if (!trace_out.empty()) {
      std::vector<int> missing;
      const bool ok = obs::gather_trace_to_rank0(comm, trace_out, 5.0, &missing);
      if (comm.rank() == 0) {
        if (ok) {
          std::printf("trace written to %s (%zu rank(s) missing)\n", trace_out.c_str(),
                      missing.size());
          const std::size_t dropped = obs::TraceCollector::instance().dropped_events();
          if (dropped > 0) {
            std::fprintf(stderr,
                         "warning: trace dropped %zu event(s) (ring full; raise "
                         "SMART_TRACE_EVENTS)\n",
                         dropped);
          }
        } else {
          std::fprintf(stderr, "error: could not write trace to %s\n", trace_out.c_str());
        }
      }
    }
    if (!metrics_out.empty() && comm.rank() == 0) {
      // Ranks are threads of this process, so the global registry already
      // holds every rank's updates; no wire gather needed here.
      std::ofstream os(metrics_out);
      if (os) {
        obs::MetricsRegistry::global().snapshot().dump_json(os);
        std::printf("metrics written to %s\n", metrics_out.c_str());
      } else {
        std::fprintf(stderr, "error: could not write metrics to %s\n", metrics_out.c_str());
      }
    }
  }, net);

  if (!phase_csv.empty()) {
    std::ofstream os(phase_csv);
    if (os) {
      phase_tracer.dump_csv(os);
      std::printf("phase CSV written to %s\n", phase_csv.c_str());
    } else {
      std::fprintf(stderr, "error: could not write phase CSV to %s\n", phase_csv.c_str());
    }
  }

  int rc = 0;
  if (!critpath_out.empty() || !critpath_json.empty()) {
    // Ranks are threads of this process, so the global collector already
    // holds the merged cross-rank trace.
    obs::TraceCollector& tc = obs::TraceCollector::instance();
    rc = emit_critpath(obs::extract_critical_path(tc.snapshot_events(), tc.dropped_events()),
                       critpath_out, critpath_json);
  }

  std::printf("wall %.3f s, virtual makespan %.4f s (%s model), network %s across %d rank(s)\n",
              wall.seconds(), stats.makespan(), net->name(),
              format_bytes(stats.total_bytes_sent()).c_str(), ranks);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.option("sim", "simulation: heat3d | lulesh | emulator", "heat3d")
      .option("app", "analytics job (see --list)", "histogram")
      .option("ranks", "simulated cluster size", "2")
      .option("threads", "threads per rank", "2")
      .option("steps", "time-steps to simulate", "3")
      .option("size", "per-rank size hint (heat3d nz / lulesh edge)", "24")
      .option("mode", "in-situ mode: time | space", "time")
      .option("render", "write the final plane to this PGM path (summary app)")
      .option("trace-out", "write a Chrome/Perfetto trace of the run to this JSON path")
      .option("critpath-out", "write the critical-path bottleneck report here ('-' = stdout)")
      .option("critpath-json", "write the critical-path attribution JSON to this path")
      .option("critpath-in", "analyze a saved Chrome-trace JSON file instead of running")
      .option("metrics-out", "write the aggregated metrics snapshot to this JSON path")
      .option("phase-csv", "write the scheduler's per-phase timeline to this CSV path")
      .option("net-model", "interconnect cost model: flat | fattree | dragonfly")
      .option("net-alpha", "per-message latency in seconds")
      .option("net-beta", "access-link bandwidth in bytes/second")
      .option("ranks-per-node", "ranks sharing one simulated node")
      .option("net-lane-cap", "mailbox lane capacity in messages (0 = unbounded)")
      .option("net-lane-cap-bytes", "mailbox lane capacity in bytes (0 = unbounded)")
      .option("seed", "master seed: rank data streams derive from it; echoed in RUNSTATS", "0")
      .option("schedule", "deterministic delivery policy: fifo | random | reorder | replay")
      .option("schedule-seed", "schedule policy seed (defaults to --seed)")
      .option("schedule-trace", "recorded delivery trace for --schedule replay")
      .flag("list", "print available simulations and analytics");
  try {
    args.parse(argc, argv);
    if (args.get_flag("list")) {
      list_choices();
      return 0;
    }
    return run(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
