// Fault recovery: an in-situ analytics run that survives a rank death.
//
// Four ranks accumulate a global histogram across three simulated time
// steps.  A FaultInjector rule kills rank 3 mid-step 2 — exactly the
// failure a long-lived in-situ job fears most, because under plain MPI the
// surviving ranks would block forever inside the combination collective.
// With a RecoveryPolicy armed, the survivors detect the death through
// their timed receives, rebuild the combination tree over the reduced rank
// set, and finish the job; the per-run auto-checkpoint preserves the last
// globally consistent state for a restarted replacement rank.
//
//   $ ./fault_recovery
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analytics/histogram.h"
#include "common/rng.h"
#include "core/checkpoint.h"
#include "simmpi/fault.h"
#include "simmpi/world.h"

int main() {
  using namespace smart;
  constexpr int kRanks = 4;
  constexpr int kSteps = 3;
  constexpr std::size_t kStepLen = 1u << 16;
  const auto ckpt_path = [](int rank) {
    return "/tmp/fault_recovery_rank" + std::to_string(rank) + ".ckpt";
  };

  // Kill rank 3 at its second combination send — i.e. in the middle of
  // time step 2, after step 1's result is globally combined and
  // checkpointed everywhere.
  auto faults = std::make_shared<simmpi::FaultInjector>();
  faults->add_rule({.op = simmpi::FaultOp::kSend,
                    .rank = 3,
                    .action = simmpi::FaultAction::kKillRank,
                    .skip = 1});

  std::vector<std::size_t> counts(16, 0);  // survivors agree, any may write
  std::vector<std::size_t> lost(kRanks, 0);
  const auto stats = simmpi::launch(
      kRanks,
      [&](simmpi::Communicator& comm) {
        RunOptions opts;
        opts.accumulate_across_runs = true;
        analytics::Histogram<double> hist(SchedArgs(2, 1), 0.0, 100.0, 16, opts);

        RecoveryPolicy policy;
        policy.peer_timeout_seconds = 0.25;  // a silent peer = PeerUnreachable
        policy.combine_retries = 2;          // transient loss: retry with backoff
        policy.checkpoint_every_runs = 1;    // atomic checkpoint per step
        policy.checkpoint_path = ckpt_path(comm.rank());
        hist.set_recovery_policy(policy);

        for (int step = 0; step < kSteps; ++step) {
          Rng rng(derive_seed(static_cast<std::uint64_t>(step),
                              static_cast<std::uint64_t>(comm.rank())));
          std::vector<double> data(kStepLen);
          for (auto& x : data) x = rng.uniform(0.0, 100.0);
          hist.run(data.data(), data.size(), counts.data(), counts.size());
        }
        lost[static_cast<std::size_t>(comm.rank())] = hist.stats().ranks_lost;
      },
      nullptr, faults);

  std::printf("ranks killed mid-run : %zu (rank %d)\n", stats.ranks_killed.size(),
              stats.ranks_killed.empty() ? -1 : stats.ranks_killed.front());
  std::size_t max_lost = 0;
  for (std::size_t l : lost) max_lost = std::max(max_lost, l);
  std::printf("survivors degraded to a %d-rank combination tree (ranks_lost=%zu)\n",
              kRanks - static_cast<int>(max_lost), max_lost);

  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  std::printf("combined histogram over %zu samples (4 ranks x step 1 + 3 survivors x steps 2-3):\n",
              total);
  for (int b = 0; b < 16; ++b) {
    std::printf("  [%5.1f, %5.1f) %8zu\n", 6.25 * b, 6.25 * (b + 1), counts[b]);
  }

  // The dead rank's auto-checkpoint froze at the last step it completed:
  // a replacement rank restores the globally consistent step-1 state.
  analytics::Histogram<double> restored(SchedArgs(2, 1), 0.0, 100.0, 16);
  load_checkpoint(restored, ckpt_path(3));
  std::size_t restored_total = 0;
  for (const auto& [key, obj] : restored.get_combination_map()) {
    restored_total += static_cast<const analytics::Bucket&>(*obj).count;
  }
  std::printf("rank 3's checkpoint restores the pre-failure global state: %zu samples\n",
              restored_total);

  for (int rank = 0; rank < kRanks; ++rank) std::remove(ckpt_path(rank).c_str());
  return 0;
}
