// In-transit and hybrid processing (paper Section 6): analytics on
// dedicated staging ranks instead of the simulation nodes.
//
// Six ranks: four run MiniLulesh, two are staging nodes.  The same
// histogram job is driven two ways:
//   * in-transit — raw time-steps ship to the staging ranks;
//   * hybrid     — each simulation rank reduces locally (in-situ half) and
//                  ships only its combination-map snapshot, cutting the
//                  network traffic by orders of magnitude.
//
//   $ ./intransit_staging
#include <cstdio>

#include "analytics/histogram.h"
#include "common/table.h"
#include "core/intransit.h"
#include "sim/minilulesh.h"
#include "simmpi/world.h"

int main() {
  using namespace smart;
  const intransit::Topology topo{.world_size = 6, .num_staging = 2};
  constexpr int kSteps = 3;

  auto drive = [&](bool hybrid) {
    return simmpi::launch(topo.world_size, [&](simmpi::Communicator& comm) {
      // Simulation ranks form their own sub-communicator so their halo
      // exchange addresses only each other (MPI_Comm_split pattern).
      auto sub = comm.split(topo.is_staging(comm.rank()) ? 1 : 0, comm.rank());
      if (!topo.is_staging(comm.rank())) {
        // --- simulation rank: never pauses for global analytics ---------
        sim::MiniLulesh lulesh({.edge = 16}, &sub);
        analytics::Histogram<double> local(SchedArgs(2, 1), 0.0, 16.0, 32);
        local.set_global_combination(false);
        for (int s = 0; s < kSteps; ++s) {
          lulesh.step();
          if (hybrid) {
            intransit::ship_local_result(comm, topo, local, lulesh.output(),
                                         lulesh.output_len());
          } else {
            intransit::ship_raw_step(comm, topo, lulesh.output(), lulesh.output_len());
          }
        }
        intransit::ship_end(comm, topo);
      } else {
        // --- staging rank: drain producers, then combine with peers ------
        RunOptions acc;
        acc.accumulate_across_runs = true;
        analytics::Histogram<double> staged(SchedArgs(2, 1), 0.0, 16.0, 32, acc);
        staged.set_global_combination(false);
        const std::size_t payloads = intransit::stage_all(comm, topo, staged);
        intransit::combine_across_staging(comm, topo, staged);
        if (comm.rank() == topo.first_staging()) {
          std::size_t total = 0;
          for (const auto& [key, obj] : staged.get_combination_map()) {
            total += static_cast<const analytics::Bucket&>(*obj).count;
          }
          std::printf("  staging rank %d handled %zu payloads; global histogram covers %zu "
                      "elements\n",
                      comm.rank(), payloads, total);
        }
      }
    });
  };

  std::printf("in-transit (raw steps shipped):\n");
  const auto raw = drive(false);
  std::printf("  network traffic: %s\n\n", format_bytes(raw.total_bytes_sent()).c_str());

  std::printf("hybrid (local reduction in situ, snapshots shipped):\n");
  const auto hybrid = drive(true);
  std::printf("  network traffic: %s  (%.0fx less than in-transit)\n",
              format_bytes(hybrid.total_bytes_sent()).c_str(),
              static_cast<double>(raw.total_bytes_sent()) /
                  static_cast<double>(hybrid.total_bytes_sent()));
  return 0;
}
